//! Static code layout generation.
//!
//! A [`CodeLayout`] is the synthetic analogue of the text segment of a server
//! software stack: a few thousand functions, each made of basic blocks laid
//! out contiguously in the instruction address space, with a control-flow
//! graph connecting them (conditional branches, jumps, calls, indirect
//! branches and returns). The layout is produced deterministically from a
//! [`WorkloadProfile`] and a seed.
//!
//! The layout is consumed in three places:
//!
//! * [`crate::trace::TraceGenerator`] walks it to produce the dynamic
//!   instruction stream;
//! * the front-end simulator's *predecoder* asks which branches live in a
//!   given cache line ([`CodeLayout::branches_in_line`]) to model
//!   Boomerang's and Confluence's BTB prefill;
//! * the analysis module measures static/dynamic properties such as the
//!   branch-target distance distribution of Figure 4.

use crate::profile::WorkloadProfile;
use sim_core::rng::SimRng;
use sim_core::{
    Addr, BasicBlock, BranchInfo, BranchKind, CacheLine, LineGeometry, MAX_BASIC_BLOCK_INSTRUCTIONS,
};
use std::fmt;

/// Base address at which the synthetic text segment is laid out.
pub const CODE_BASE: Addr = Addr::new(0x0040_0000);

/// Index of a static basic block inside a [`CodeLayout`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u32);

/// Index of a function inside a [`CodeLayout`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FunctionId(pub u32);

/// Dynamic behaviour assigned to a static conditional branch.
///
/// The trace generator keeps per-branch state (loop counters, pattern
/// positions) so that the same static branch behaves consistently across its
/// dynamic executions — which is what lets history-based predictors such as
/// TAGE do well on loops and patterns.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BranchBehavior {
    /// Taken with a fixed probability.
    Biased {
        /// Probability of taking the branch.
        p_taken: f64,
    },
    /// Loop back-edge: taken `trip_count - 1` times, then not taken once.
    Loop {
        /// Loop trip count (>= 2).
        trip_count: u32,
    },
    /// Repeating taken/not-taken pattern of the given period.
    Pattern {
        /// Pattern period (2..=24).
        period: u8,
        /// Bit `i` gives the outcome of the `i`-th execution within a period.
        bits: u32,
    },
    /// Effectively data-dependent: close to 50/50 and unpredictable.
    DataDependent {
        /// Probability of taking the branch.
        p_taken: f64,
    },
}

/// Control-flow successor information for a static basic block.
#[derive(Clone, Debug, PartialEq)]
pub enum ControlFlow {
    /// Conditional branch: taken goes to `taken`, not-taken falls through to
    /// the next block in layout order.
    Conditional {
        /// Block executed when the branch is taken.
        taken: BlockId,
        /// Dynamic behaviour of the branch.
        behavior: BranchBehavior,
    },
    /// Unconditional direct jump.
    Jump {
        /// Jump target block.
        target: BlockId,
    },
    /// Indirect jump through a register (e.g. a switch statement).
    IndirectJump {
        /// Possible target blocks; chosen with uniform probability.
        targets: Vec<BlockId>,
    },
    /// Direct call; control returns to the fall-through block afterwards.
    Call {
        /// Callee function.
        callee: FunctionId,
    },
    /// Indirect call (virtual dispatch, function pointers).
    IndirectCall {
        /// Possible callee functions; chosen with uniform probability.
        callees: Vec<FunctionId>,
    },
    /// Return to the caller.
    Return,
}

impl ControlFlow {
    /// The [`BranchKind`] corresponding to this control flow.
    pub fn kind(&self) -> BranchKind {
        match self {
            ControlFlow::Conditional { .. } => BranchKind::Conditional,
            ControlFlow::Jump { .. } => BranchKind::DirectJump,
            ControlFlow::IndirectJump { .. } => BranchKind::IndirectJump,
            ControlFlow::Call { .. } => BranchKind::Call,
            ControlFlow::IndirectCall { .. } => BranchKind::IndirectCall,
            ControlFlow::Return => BranchKind::Return,
        }
    }
}

/// One static basic block together with its control-flow successor
/// information.
#[derive(Clone, Debug, PartialEq)]
pub struct StaticBlock {
    /// Identifier of this block.
    pub id: BlockId,
    /// Function this block belongs to.
    pub function: FunctionId,
    /// Address range and terminating branch.
    pub block: BasicBlock,
    /// Successor information.
    pub flow: ControlFlow,
}

impl StaticBlock {
    /// Start address of the block.
    pub fn start(&self) -> Addr {
        self.block.start
    }

    /// Address of the terminating branch instruction.
    pub fn branch_pc(&self) -> Addr {
        self.block.last_instruction()
    }

    /// The terminating branch description.
    ///
    /// # Panics
    ///
    /// Panics if the block has no terminator; layout generation always
    /// produces one.
    pub fn terminator(&self) -> BranchInfo {
        self.block
            .terminator
            .expect("generated blocks always have a terminator")
    }
}

/// A function: a contiguous run of basic blocks with a single entry.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Identifier of this function.
    pub id: FunctionId,
    /// Entry block.
    pub entry: BlockId,
    /// Index of the first block (same as `entry`).
    pub first_block: u32,
    /// Number of blocks in the function.
    pub num_blocks: u32,
    /// Whether this function belongs to the "hot" set that call sites prefer.
    pub is_hot: bool,
}

impl Function {
    /// Iterator over the block ids of this function, in layout order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (self.first_block..self.first_block + self.num_blocks).map(BlockId)
    }
}

/// Summary statistics of a generated layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayoutSummary {
    /// Number of functions.
    pub functions: usize,
    /// Number of basic blocks.
    pub blocks: usize,
    /// Total instructions.
    pub instructions: u64,
    /// Footprint in bytes.
    pub footprint_bytes: u64,
    /// Number of static conditional branches.
    pub conditional_branches: usize,
    /// Number of static unconditional branches (jumps, calls, returns).
    pub unconditional_branches: usize,
}

impl fmt::Display for LayoutSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} functions, {} blocks, {} instructions ({} KB)",
            self.functions,
            self.blocks,
            self.instructions,
            self.footprint_bytes / 1024
        )
    }
}

/// The synthetic text segment: functions, blocks, and indexes over them.
#[derive(Clone, Debug)]
pub struct CodeLayout {
    profile: WorkloadProfile,
    geometry: LineGeometry,
    blocks: Vec<StaticBlock>,
    functions: Vec<Function>,
    /// The branch-per-line index in CSR form. Blocks are laid out
    /// contiguously, so branch PCs are strictly increasing with the block id
    /// and every cache line's branches form one contiguous id range:
    /// line `first_line + l` holds the blocks
    /// `line_branch_ids[line_branch_offsets[l] .. line_branch_offsets[l+1]]`,
    /// where `line_branch_ids` is simply the identity (kept materialised so
    /// [`CodeLayout::branches_in_line`] can hand out slices). Replaces a
    /// per-line hash map of `Vec`s: no hashing on the predecode hot path and
    /// no per-line allocations at generation time.
    first_line: CacheLine,
    line_branch_offsets: Box<[u32]>,
    line_branch_ids: Box<[BlockId]>,
    service_roots: Vec<FunctionId>,
    dispatcher: FunctionId,
    code_end: Addr,
}

impl CodeLayout {
    /// Generates the layout for `profile` with 64-byte cache lines.
    ///
    /// Generation is deterministic: the same profile (including its seed)
    /// always produces the same layout.
    pub fn generate(profile: &WorkloadProfile) -> Self {
        Self::generate_with_geometry(profile, LineGeometry::default())
    }

    /// Generates the layout for `profile` using a specific cache-line
    /// geometry.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`WorkloadProfile::validate`]. Callers
    /// accepting user-authored profiles (the campaign spec parser) validate
    /// at parse time, so a panic here indicates a programming error, and the
    /// message names the offending field.
    pub fn generate_with_geometry(profile: &WorkloadProfile, geometry: LineGeometry) -> Self {
        if let Err(e) = profile.validate() {
            panic!("invalid workload profile: {e}");
        }
        Builder::new(profile.clone(), geometry).build()
    }

    /// The profile this layout was generated from.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Cache-line geometry the layout was generated for.
    pub fn geometry(&self) -> LineGeometry {
        self.geometry
    }

    /// All static blocks in layout (address) order.
    pub fn blocks(&self) -> &[StaticBlock] {
        &self.blocks
    }

    /// All functions in layout order.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// The block with the given id.
    pub fn block(&self, id: BlockId) -> &StaticBlock {
        &self.blocks[id.0 as usize]
    }

    /// The function with the given id.
    pub fn function(&self, id: FunctionId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// The dispatcher function that drives the workload's service loop.
    pub fn dispatcher(&self) -> FunctionId {
        self.dispatcher
    }

    /// The dispatcher's entry block: the point where trace generation starts
    /// and where control resumes when the call stack unwinds completely.
    pub fn entry_block(&self) -> BlockId {
        self.functions[self.dispatcher.0 as usize].entry
    }

    /// The service-root functions the dispatcher cycles through.
    pub fn service_roots(&self) -> &[FunctionId] {
        &self.service_roots
    }

    /// First byte address of the text segment.
    pub fn code_base(&self) -> Addr {
        CODE_BASE
    }

    /// One-past-the-end address of the text segment.
    pub fn code_end(&self) -> Addr {
        self.code_end
    }

    /// The block that starts exactly at `addr`, if any.
    pub fn block_at(&self, addr: Addr) -> Option<BlockId> {
        // Blocks are sorted by start address, so a binary search replaces
        // the start-address hash map the layout used to build.
        let idx = self.blocks.partition_point(|b| b.block.start < addr);
        self.blocks
            .get(idx)
            .filter(|b| b.block.start == addr)
            .map(|b| b.id)
    }

    /// The block containing `addr`, if `addr` lies inside the text segment.
    pub fn block_containing(&self, addr: Addr) -> Option<BlockId> {
        if addr < CODE_BASE || addr >= self.code_end {
            return None;
        }
        let idx = self
            .blocks
            .partition_point(|b| b.block.start <= addr)
            .checked_sub(1)?;
        let candidate = &self.blocks[idx];
        candidate.block.contains(addr).then_some(candidate.id)
    }

    /// The first block whose terminating branch lies at or after `addr`.
    ///
    /// This is what a hardware predecoder effectively computes when it scans
    /// forward from a fetch address looking for the next branch. Branch PCs
    /// are strictly increasing with the block id, so the line index answers
    /// this in O(1): scan the (few) branches of `addr`'s own cache line,
    /// then fall through to the first branch of any later line — no binary
    /// search over the block array (Boomerang pays this on every BTB-miss
    /// probe).
    pub fn next_branch_at_or_after(&self, addr: Addr) -> Option<BlockId> {
        if addr >= self.code_end {
            return None;
        }
        if addr < CODE_BASE {
            return self.blocks.first().map(|b| b.id);
        }
        let line = self.geometry.line_of(addr);
        for &id in self.branches_in_line(line) {
            if self.block(id).branch_pc() >= addr {
                return Some(id);
            }
        }
        // No branch at or after `addr` in its own line: the next branch is
        // the first one of any later line, which is exactly the id the CSR
        // offset one past this line points at.
        let l = (line.0 - self.first_line.0) as usize;
        let next = self.line_branch_offsets[l + 1] as usize;
        self.line_branch_ids.get(next).copied()
    }

    /// Blocks whose terminating branch instruction lies in `line`, in address
    /// order. Used by the predecoder to extract branches from a fetched cache
    /// block (Boomerang and Confluence BTB prefill).
    pub fn branches_in_line(&self, line: CacheLine) -> &[BlockId] {
        let Some(l) = line.0.checked_sub(self.first_line.0) else {
            return &[];
        };
        let l = l as usize;
        if l + 1 >= self.line_branch_offsets.len() {
            return &[];
        }
        let lo = self.line_branch_offsets[l] as usize;
        let hi = self.line_branch_offsets[l + 1] as usize;
        &self.line_branch_ids[lo..hi]
    }

    /// The fall-through successor of `id`: the next block in layout order
    /// within the same function, if any.
    pub fn fall_through(&self, id: BlockId) -> Option<BlockId> {
        let block = self.block(id);
        let func = self.function(block.function);
        let next = id.0 + 1;
        (next < func.first_block + func.num_blocks).then_some(BlockId(next))
    }

    /// Summary statistics.
    pub fn summary(&self) -> LayoutSummary {
        let instructions: u64 = self.blocks.iter().map(|b| b.block.instructions).sum();
        let conditional = self
            .blocks
            .iter()
            .filter(|b| b.flow.kind() == BranchKind::Conditional)
            .count();
        LayoutSummary {
            functions: self.functions.len(),
            blocks: self.blocks.len(),
            instructions,
            footprint_bytes: self.code_end.raw() - CODE_BASE.raw(),
            conditional_branches: conditional,
            unconditional_branches: self.blocks.len() - conditional,
        }
    }
}

/// Builds the branch-per-line index in CSR form (see the field docs on
/// [`CodeLayout`]): branch PCs are strictly increasing with the block id, so
/// one counting pass suffices. Shared by generation and by the artifact
/// decode path, which rebuilds the index instead of storing it.
fn build_line_index(
    geometry: LineGeometry,
    blocks: &[StaticBlock],
    code_end: Addr,
) -> (CacheLine, Box<[u32]>, Box<[BlockId]>) {
    let first_line = geometry.line_of(CODE_BASE);
    let last_line = if code_end > CODE_BASE {
        geometry.line_of(Addr::new(code_end.raw() - 1))
    } else {
        first_line
    };
    let num_lines = (last_line.0 - first_line.0 + 1) as usize;
    let mut line_branch_offsets = vec![0u32; num_lines + 1];
    for b in blocks {
        let l = (geometry.line_of(b.branch_pc()).0 - first_line.0) as usize;
        line_branch_offsets[l + 1] += 1;
    }
    for l in 0..num_lines {
        line_branch_offsets[l + 1] += line_branch_offsets[l];
    }
    let line_branch_ids: Box<[BlockId]> = (0..blocks.len() as u32).map(BlockId).collect();
    (
        first_line,
        line_branch_offsets.into_boxed_slice(),
        line_branch_ids,
    )
}

impl CodeLayout {
    /// Reassembles a layout from decoded parts (the artifact-cache decode
    /// path; see [`crate::codec`]): one `(instructions, flow)` pair per
    /// block in layout order, plus the function table, service roots and
    /// dispatcher. Every derived structure — block addresses, terminators,
    /// the branch-per-line index, `code_end` — is rebuilt from the layout
    /// invariants rather than stored.
    ///
    /// Returns a field-level error instead of panicking on inputs that
    /// violate those invariants (the decode path feeds this untrusted bytes).
    pub(crate) fn from_parts(
        profile: WorkloadProfile,
        geometry: LineGeometry,
        raw: Vec<(u64, ControlFlow)>,
        functions: Vec<Function>,
        service_roots: Vec<FunctionId>,
        dispatcher: FunctionId,
    ) -> Result<Self, crate::codec::CodecError> {
        use crate::codec::CodecError;
        let err = |field, message: String| Err(CodecError { field, message });
        if let Err(e) = profile.validate() {
            return err("profile", e.to_string());
        }
        if raw.is_empty() {
            return err("layout.blocks.len", "layout has no blocks".to_string());
        }
        let covered: u64 = functions.iter().map(|f| u64::from(f.num_blocks)).sum();
        if covered != raw.len() as u64 {
            return err(
                "layout.functions",
                format!(
                    "functions cover {covered} blocks but {} are stored",
                    raw.len()
                ),
            );
        }

        // Block addresses follow from contiguity; owners from the function
        // table's contiguous ranges.
        let mut starts = Vec::with_capacity(raw.len());
        let mut cursor = CODE_BASE;
        for (instructions, _) in &raw {
            starts.push(cursor);
            cursor = cursor.add_instructions(*instructions);
        }
        let code_end = cursor;
        let mut owners: Vec<FunctionId> = Vec::with_capacity(raw.len());
        for f in &functions {
            owners.extend(std::iter::repeat_n(f.id, f.num_blocks as usize));
        }

        // Conditional and call blocks need a fall-through successor inside
        // the same function; the trace generator relies on it.
        for (idx, (_, flow)) in raw.iter().enumerate() {
            if matches!(
                flow,
                ControlFlow::Conditional { .. }
                    | ControlFlow::Call { .. }
                    | ControlFlow::IndirectCall { .. }
            ) {
                let func = &functions[owners[idx].0 as usize];
                if idx as u32 == func.first_block + func.num_blocks - 1 {
                    return err(
                        "block.flow",
                        format!(
                            "block {idx} of kind {} is the last block of its function \
                             but needs a fall-through successor",
                            flow.kind()
                        ),
                    );
                }
            }
        }

        let blocks: Vec<StaticBlock> = raw
            .into_iter()
            .enumerate()
            .map(|(idx, (instructions, flow))| {
                let start = starts[idx];
                let branch_pc = start.add_instructions(instructions - 1);
                let kind = flow.kind();
                let target_addr = match &flow {
                    ControlFlow::Conditional { taken, .. } => Some(starts[taken.0 as usize]),
                    ControlFlow::Jump { target } => Some(starts[target.0 as usize]),
                    ControlFlow::Call { callee } => {
                        Some(starts[functions[callee.0 as usize].entry.0 as usize])
                    }
                    _ => None,
                };
                let terminator = match target_addr {
                    Some(t) => BranchInfo::direct(branch_pc, kind, t),
                    None => BranchInfo::indirect(branch_pc, kind),
                };
                StaticBlock {
                    id: BlockId(idx as u32),
                    function: owners[idx],
                    block: BasicBlock::new(start, instructions, terminator),
                    flow,
                }
            })
            .collect();

        let (first_line, line_branch_offsets, line_branch_ids) =
            build_line_index(geometry, &blocks, code_end);
        Ok(CodeLayout {
            profile,
            geometry,
            blocks,
            functions,
            first_line,
            line_branch_offsets,
            line_branch_ids,
            service_roots,
            dispatcher,
            code_end,
        })
    }
}

/// Internal layout builder.
struct Builder {
    profile: WorkloadProfile,
    geometry: LineGeometry,
    rng: SimRng,
}

/// Per-block plan produced in the first pass, before targets are known.
struct PlannedBlock {
    function: FunctionId,
    start: Addr,
    instructions: u64,
    kind: BranchKind,
}

/// Layer a function belongs to in the synthetic software stack.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Role {
    /// The request loop (function 0).
    Dispatcher,
    /// Request-handling code owned by one service root.
    Service(u32),
    /// Shared leaf-like helper code callable from every service.
    Utility,
}

/// Output of the planning pass.
struct Plan {
    planned: Vec<PlannedBlock>,
    functions: Vec<Function>,
    roles: Vec<Role>,
    service_roots: Vec<FunctionId>,
}

impl Builder {
    fn new(profile: WorkloadProfile, geometry: LineGeometry) -> Self {
        let rng = SimRng::seeded(profile.seed ^ 0xc0de_1a0f_f00d_0001);
        Builder {
            profile,
            geometry,
            rng,
        }
    }

    fn build(mut self) -> CodeLayout {
        let plan = self.plan_blocks();
        let Plan {
            planned,
            functions,
            roles,
            service_roots,
        } = plan;
        let utilities: Vec<FunctionId> = functions
            .iter()
            .filter(|f| roles[f.id.0 as usize] == Role::Utility)
            .map(|f| f.id)
            .collect();

        // Pass 2a (sequential): every RNG draw, in the exact order the
        // previous single-pass implementation made them, deciding each
        // block's control flow. Keeping the draw order byte-for-byte is what
        // keeps generated layouts identical for a fixed seed.
        let flows = self.draw_flows(&planned, &functions, &roles, &service_roots, &utilities);

        // Pass 2b (sharded): assembling the `StaticBlock`s from (plan, flow)
        // is a pure per-block function, so independent runs of whole
        // functions build in parallel on the work-stealing pool.
        let blocks = Self::assemble_blocks(&planned, &functions, flows);

        let code_end = blocks
            .last()
            .map(|b| b.block.fall_through())
            .unwrap_or(CODE_BASE);

        let (first_line, line_branch_offsets, line_branch_ids) =
            build_line_index(self.geometry, &blocks, code_end);

        CodeLayout {
            profile: self.profile,
            geometry: self.geometry,
            blocks,
            functions,
            first_line,
            line_branch_offsets,
            line_branch_ids,
            service_roots,
            dispatcher: FunctionId(0),
            code_end,
        }
    }

    /// First pass: decide the function/block structure, sizes, addresses and
    /// terminator kinds, but not targets.
    ///
    /// The text segment is organised the way a layered server stack is:
    ///
    /// * function 0 is the *dispatcher* (request loop),
    /// * each service root owns a contiguous group of *service* functions —
    ///   the code one request type exercises,
    /// * the tail of the layout is a shared *utility* layer (allocator,
    ///   libc-like helpers) that every service calls into.
    fn plan_blocks(&mut self) -> Plan {
        let target_instructions = self.profile.footprint_bytes / sim_core::INSTRUCTION_BYTES;
        let utility_fraction = self.profile.utility_fraction.clamp(0.03, 0.4);
        let service_instructions = (target_instructions as f64 * (1.0 - utility_fraction)) as u64;
        let num_roots = self.profile.service_roots.max(1);
        let per_subtree_instructions = (service_instructions / num_roots as u64).max(256);

        // Pre-size from the profile's means (with ~15% headroom): a
        // multi-megabyte layout plans hundreds of thousands of blocks, and
        // growth reallocations were a visible slice of generation time.
        let est_blocks = (target_instructions as f64
            / self.profile.mean_block_instructions.max(1.0)
            * 1.15) as usize
            + 64;
        let est_functions =
            (est_blocks as f64 / self.profile.mean_function_blocks.max(2.0) * 1.3) as usize + 16;
        let mut planned: Vec<PlannedBlock> = Vec::with_capacity(est_blocks);
        let mut functions: Vec<Function> = Vec::with_capacity(est_functions);
        let mut roles: Vec<Role> = Vec::with_capacity(est_functions);
        let mut service_roots: Vec<FunctionId> = Vec::with_capacity(num_roots);
        let mut cursor = CODE_BASE;
        let mut total_instructions: u64 = 0;

        // Function 0: the dispatcher. One call block per service root plus a
        // jump back to the entry, modelling the server's request loop.
        {
            let first_block = 0u32;
            for _ in 0..num_roots {
                let len = self.rng.geometric(3.0, 8);
                planned.push(PlannedBlock {
                    function: FunctionId(0),
                    start: cursor,
                    instructions: len,
                    kind: BranchKind::Call,
                });
                cursor = cursor.add_instructions(len);
                total_instructions += len;
            }
            let len = self.rng.geometric(2.0, 4);
            planned.push(PlannedBlock {
                function: FunctionId(0),
                start: cursor,
                instructions: len,
                kind: BranchKind::DirectJump,
            });
            cursor = cursor.add_instructions(len);
            total_instructions += len;
            functions.push(Function {
                id: FunctionId(0),
                entry: BlockId(first_block),
                first_block,
                num_blocks: num_roots as u32 + 1,
                is_hot: true,
            });
            roles.push(Role::Dispatcher);
        }

        // Service subtrees: one contiguous group of functions per root.
        for subtree in 0..num_roots as u32 {
            let budget_end = total_instructions + per_subtree_instructions;
            let mut first_of_subtree = true;
            while total_instructions < budget_end {
                let fid = FunctionId(functions.len() as u32);
                if first_of_subtree {
                    service_roots.push(fid);
                    first_of_subtree = false;
                }
                total_instructions += self.plan_function(
                    fid,
                    Role::Service(subtree),
                    &mut planned,
                    &mut functions,
                    &mut cursor,
                );
                roles.push(Role::Service(subtree));
            }
        }

        // Shared utility layer at the end of the layout.
        while total_instructions < target_instructions {
            let fid = FunctionId(functions.len() as u32);
            total_instructions += self.plan_function(
                fid,
                Role::Utility,
                &mut planned,
                &mut functions,
                &mut cursor,
            );
            roles.push(Role::Utility);
        }
        // Guarantee the utility layer exists even for tiny footprints, so
        // every service call site always has a valid lower layer to call.
        if !roles.contains(&Role::Utility) {
            let fid = FunctionId(functions.len() as u32);
            self.plan_function(
                fid,
                Role::Utility,
                &mut planned,
                &mut functions,
                &mut cursor,
            );
            roles.push(Role::Utility);
        }

        Plan {
            planned,
            functions,
            roles,
            service_roots,
        }
    }

    /// Plans one function's blocks; returns the instructions it occupies.
    fn plan_function(
        &mut self,
        fid: FunctionId,
        role: Role,
        planned: &mut Vec<PlannedBlock>,
        functions: &mut Vec<Function>,
        cursor: &mut Addr,
    ) -> u64 {
        // Utility functions are leaf-like helpers: shorter and call-free, so
        // the layered call graph terminates there.
        let (mean_blocks, allow_calls) = match role {
            Role::Utility => (self.profile.mean_function_blocks * 0.6, false),
            _ => (self.profile.mean_function_blocks, true),
        };
        let num_blocks = self.rng.geometric(mean_blocks, 96).max(2) as u32;
        let first_block = planned.len() as u32;
        let mut instructions = 0;

        for i in 0..num_blocks {
            let len = self
                .rng
                .geometric(
                    self.profile.mean_block_instructions,
                    MAX_BASIC_BLOCK_INSTRUCTIONS,
                )
                .max(1);
            let kind = if i == num_blocks - 1 {
                BranchKind::Return
            } else {
                self.draw_terminator_kind(allow_calls)
            };
            planned.push(PlannedBlock {
                function: fid,
                start: *cursor,
                instructions: len,
                kind,
            });
            *cursor = cursor.add_instructions(len);
            instructions += len;
        }

        functions.push(Function {
            id: fid,
            entry: BlockId(first_block),
            first_block,
            num_blocks,
            is_hot: role == Role::Utility,
        });
        instructions
    }

    fn draw_terminator_kind(&mut self, allow_calls: bool) -> BranchKind {
        let t = &self.profile.terminators;
        let weights = [
            if allow_calls { t.call } else { 0.0 },
            if allow_calls { t.indirect_call } else { 0.0 },
            t.jump,
            t.indirect_jump,
            t.early_return,
            t.conditional()
                + if allow_calls {
                    0.0
                } else {
                    t.call + t.indirect_call
                },
        ];
        match self.rng.weighted_index(&weights) {
            0 => BranchKind::Call,
            1 => BranchKind::IndirectCall,
            2 => BranchKind::DirectJump,
            3 => BranchKind::IndirectJump,
            4 => BranchKind::Return,
            _ => BranchKind::Conditional,
        }
    }

    /// Second pass, draw stage: assign targets and behaviours now that every
    /// block and function exists. This stage makes every RNG draw of the
    /// second pass, in layout order, and nothing else — the draw sequence is
    /// the contract that keeps generation byte-identical for a fixed seed,
    /// while the draw-free assembly of the `StaticBlock`s shards across the
    /// pool in [`assemble_blocks`](Self::assemble_blocks).
    fn draw_flows(
        &mut self,
        planned: &[PlannedBlock],
        functions: &[Function],
        roles: &[Role],
        service_roots: &[FunctionId],
        utilities: &[FunctionId],
    ) -> Vec<ControlFlow> {
        let mut flows = Vec::with_capacity(planned.len());
        let mut dispatcher_call_index = 0usize;
        for (idx, plan) in planned.iter().enumerate() {
            let func = &functions[plan.function.0 as usize];
            let role = roles[plan.function.0 as usize];

            let flow = match plan.kind {
                BranchKind::Return => ControlFlow::Return,
                BranchKind::Call if role == Role::Dispatcher => {
                    // The dispatcher's call sites cycle through the service
                    // roots; this is what sweeps the instruction working set
                    // the way a stream of distinct server requests does.
                    let callee = service_roots[dispatcher_call_index % service_roots.len()];
                    dispatcher_call_index += 1;
                    ControlFlow::Call { callee }
                }
                BranchKind::Call => ControlFlow::Call {
                    callee: self.pick_callee(plan.function, role, roles, utilities),
                },
                BranchKind::IndirectCall => {
                    let n = 2 + self.rng.index(3);
                    let callees = (0..n)
                        .map(|_| self.pick_callee(plan.function, role, roles, utilities))
                        .collect();
                    ControlFlow::IndirectCall { callees }
                }
                BranchKind::DirectJump => {
                    let target = if role == Role::Dispatcher {
                        // The dispatcher's closing jump loops back to its entry.
                        func.entry
                    } else if role != Role::Utility && self.rng.chance(0.10) {
                        // Tail call: jump to a lower layer's entry.
                        let callee = self.pick_callee(plan.function, role, roles, utilities);
                        functions[callee.0 as usize].entry
                    } else {
                        // Intra-function jumps are strictly forward so that a
                        // chain of unconditional jumps can never form a cycle
                        // the trace generator could not leave.
                        self.pick_forward_target(func, idx)
                    };
                    ControlFlow::Jump { target }
                }
                BranchKind::IndirectJump => {
                    // Like direct jumps, indirect jump targets (switch arms)
                    // are strictly forward so that unconditional control flow
                    // alone can never form a cycle.
                    let n = 2 + self.rng.index(5);
                    let targets = (0..n)
                        .map(|_| self.pick_forward_target(func, idx))
                        .collect();
                    ControlFlow::IndirectJump { targets }
                }
                BranchKind::Conditional => {
                    let behavior = self.draw_conditional_behavior();
                    let backward = matches!(behavior, BranchBehavior::Loop { .. })
                        || self.rng.chance(self.profile.cond_backward_fraction);
                    // A strongly taken-biased *backward* conditional is an
                    // implicit unbounded loop; real code bounds its loops, so
                    // backward biased branches are made not-taken-biased and
                    // explicit looping is left to `BranchBehavior::Loop`.
                    let behavior = match behavior {
                        BranchBehavior::Biased { p_taken } if backward && p_taken > 0.3 => {
                            BranchBehavior::Biased {
                                p_taken: (1.0 - p_taken).clamp(0.02, 0.3),
                            }
                        }
                        other => other,
                    };
                    let taken = self.pick_conditional_target(planned, func, idx, backward);
                    ControlFlow::Conditional { taken, behavior }
                }
            };
            flows.push(flow);
        }
        flows
    }

    /// Second pass, assembly stage: build each [`StaticBlock`] from its plan
    /// and drawn control flow. Pure per-block work — no RNG — so whole
    /// functions assemble independently, sharded through [`sim_core::pool`]
    /// on function-aligned chunks (inline on a single worker).
    fn assemble_blocks(
        planned: &[PlannedBlock],
        functions: &[Function],
        flows: Vec<ControlFlow>,
    ) -> Vec<StaticBlock> {
        /// Shard granularity in blocks: large enough to amortise pool
        /// dispatch, small enough to spread a multi-megabyte layout over
        /// every core.
        const CHUNK_BLOCKS: usize = 8192;
        let workers = sim_core::pool::default_workers();
        if workers <= 1 || planned.len() <= CHUNK_BLOCKS {
            return planned
                .iter()
                .enumerate()
                .zip(flows)
                .map(|((idx, plan), flow)| Self::assemble_one(planned, functions, idx, plan, flow))
                .collect();
        }

        // Chunk boundaries aligned to function starts, so each task
        // assembles a run of whole functions.
        let mut bounds = vec![0usize];
        for f in functions {
            let end = (f.first_block + f.num_blocks) as usize;
            if end - bounds.last().expect("bounds is never empty") >= CHUNK_BLOCKS {
                bounds.push(end);
            }
        }
        if *bounds.last().expect("bounds is never empty") != planned.len() {
            bounds.push(planned.len());
        }

        // Hand each task ownership of its chunk's flows (no clones): split
        // the flow vector at the chunk bounds, back to front, and let each
        // pool task take its chunk out of a cell.
        type FlowChunk = std::sync::Mutex<Option<(usize, Vec<ControlFlow>)>>;
        let mut rest = flows;
        let mut chunks: Vec<FlowChunk> = Vec::with_capacity(bounds.len() - 1);
        for w in bounds.windows(2).rev() {
            let tail = rest.split_off(w[0]);
            chunks.push(std::sync::Mutex::new(Some((w[0], tail))));
        }
        chunks.reverse();

        let shards = sim_core::pool::run_indexed(workers, &chunks, |_, cell| {
            let (base, chunk_flows) = cell
                .lock()
                .expect("a sibling assembly task panicked")
                .take()
                .expect("each chunk is assembled exactly once");
            chunk_flows
                .into_iter()
                .enumerate()
                .map(|(i, flow)| {
                    let idx = base + i;
                    Self::assemble_one(planned, functions, idx, &planned[idx], flow)
                })
                .collect::<Vec<StaticBlock>>()
        });
        let mut blocks = Vec::with_capacity(planned.len());
        for shard in shards {
            blocks.extend(shard);
        }
        blocks
    }

    /// Assembles one block: resolve the terminator's target address and wrap
    /// plan + flow into the final [`StaticBlock`].
    fn assemble_one(
        planned: &[PlannedBlock],
        functions: &[Function],
        idx: usize,
        plan: &PlannedBlock,
        flow: ControlFlow,
    ) -> StaticBlock {
        let branch_pc = plan.start.add_instructions(plan.instructions - 1);
        let kind = flow.kind();
        let target_addr = match &flow {
            ControlFlow::Conditional { taken, .. } => Some(planned[taken.0 as usize].start),
            ControlFlow::Jump { target } => Some(planned[target.0 as usize].start),
            ControlFlow::Call { callee } => {
                let entry = functions[callee.0 as usize].entry;
                Some(planned[entry.0 as usize].start)
            }
            _ => None,
        };
        let terminator = match target_addr {
            Some(t) => BranchInfo::direct(branch_pc, kind, t),
            None => BranchInfo::indirect(branch_pc, kind),
        };
        StaticBlock {
            id: BlockId(idx as u32),
            function: plan.function,
            block: BasicBlock::new(plan.start, plan.instructions, terminator),
            flow,
        }
    }

    /// Picks a callee for a call site in `caller`.
    ///
    /// The synthetic call graph is layered and acyclic: a service function
    /// calls either a deeper function of its *own* service subtree (strictly
    /// larger id) or a shared utility function; utility functions do not call
    /// at all. The acyclic structure keeps the dynamic call depth naturally
    /// bounded the way layered server stacks are, without recursion traps.
    fn pick_callee(
        &mut self,
        caller: FunctionId,
        role: Role,
        roles: &[Role],
        utilities: &[FunctionId],
    ) -> FunctionId {
        debug_assert!(!utilities.is_empty(), "the utility layer is never empty");
        fn pick_utility(rng: &mut SimRng, utilities: &[FunctionId]) -> FunctionId {
            utilities[rng.index(utilities.len())]
        }
        match role {
            Role::Dispatcher | Role::Utility => pick_utility(&mut self.rng, utilities),
            Role::Service(subtree) => {
                if self.rng.chance(self.profile.hot_callee_fraction) {
                    return pick_utility(&mut self.rng, utilities);
                }
                // Deeper functions of the same subtree have strictly larger
                // ids and are contiguous in the layout.
                let lo = caller.0 as usize + 1;
                let mut end = lo;
                while end < roles.len() && roles[end] == Role::Service(subtree) {
                    end += 1;
                }
                if lo < end {
                    FunctionId(self.rng.range_u64(lo as u64, end as u64) as u32)
                } else {
                    pick_utility(&mut self.rng, utilities)
                }
            }
        }
    }

    /// Picks a strictly-forward target block within the same function,
    /// skipping a geometrically distributed number of blocks.
    fn pick_forward_target(&mut self, func: &Function, from_idx: usize) -> BlockId {
        let last = (func.first_block + func.num_blocks - 1) as usize;
        debug_assert!(
            from_idx < last,
            "forward jumps cannot originate from the last block"
        );
        let remaining = (last - from_idx) as u64;
        let skip = self.rng.geometric(3.0, remaining.max(1));
        BlockId((from_idx as u64 + skip) as u32)
    }

    fn pick_conditional_target(
        &mut self,
        planned: &[PlannedBlock],
        func: &Function,
        from_idx: usize,
        backward: bool,
    ) -> BlockId {
        // Figure 4: ~92 % of taken conditional branches land within four
        // cache blocks; the geometric draw (mean ~1.5-1.9 lines) produces
        // that head, and the explicit far-target tail produces the rest.
        let distance_lines = if self.rng.chance(0.05) {
            4 + self.rng.range_u64(1, 24)
        } else {
            self.rng.geometric(self.profile.cond_target_mean_lines, 8) - 1
        };
        self.block_near(planned, func, from_idx, distance_lines, backward)
    }

    /// Finds a block of `func` whose start address is roughly `distance_lines`
    /// cache lines away from the terminator of block `from_idx`, in the given
    /// direction. Falls back to the nearest valid block of the function.
    fn block_near(
        &mut self,
        planned: &[PlannedBlock],
        func: &Function,
        from_idx: usize,
        distance_lines: u64,
        backward: bool,
    ) -> BlockId {
        let from_pc = planned[from_idx]
            .start
            .add_instructions(planned[from_idx].instructions - 1);
        let line_bytes = self.geometry.line_bytes();
        let offset = distance_lines * line_bytes + self.rng.range_u64(0, line_bytes);
        let desired = if backward {
            Addr::new(from_pc.raw().saturating_sub(offset))
        } else {
            from_pc.offset(offset)
        };

        let first = func.first_block as usize;
        let last = (func.first_block + func.num_blocks - 1) as usize;
        // Binary search for the block of this function whose start is closest
        // to the desired address.
        let mut lo = first;
        let mut hi = last;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if planned[mid].start < desired {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        let candidates = [lo.saturating_sub(1).max(first), lo.min(last)];
        let best = candidates
            .iter()
            .copied()
            .min_by_key(|&i| planned[i].start.distance(desired))
            .unwrap_or(first);
        // Avoid a self-loop where a conditional branch targets its own block
        // start with zero distance unless it genuinely is a tight loop.
        if best == from_idx && func.num_blocks > 1 {
            if best > first {
                return BlockId((best - 1) as u32);
            }
            return BlockId((best + 1) as u32);
        }
        BlockId(best as u32)
    }

    fn draw_conditional_behavior(&mut self) -> BranchBehavior {
        let mix = &self.profile.conditionals;
        let weights = [
            mix.loop_backedge,
            mix.pattern,
            mix.data_dependent,
            mix.biased(),
        ];
        match self.rng.weighted_index(&weights) {
            0 => {
                let trips = 2 + self.rng.geometric(mix.mean_trip_count.max(2.0) - 1.0, 24) as u32;
                BranchBehavior::Loop { trip_count: trips }
            }
            1 => {
                let period = 2 + self.rng.index(7) as u8;
                let bits = self.rng.range_u64(1, (1 << period) - 1) as u32;
                BranchBehavior::Pattern { period, bits }
            }
            2 => BranchBehavior::DataDependent {
                p_taken: 0.35 + 0.3 * self.rng.unit(),
            },
            _ => {
                // Biased branches: slightly more are not-taken-biased, which
                // is what dominates real code (error paths, assertions).
                let strong = mix.bias_mean + 0.12 * self.rng.unit();
                let p_taken = if self.rng.chance(0.45) {
                    strong.min(0.98)
                } else {
                    (1.0 - strong).max(0.02)
                };
                BranchBehavior::Biased { p_taken }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{WorkloadKind, WorkloadProfile};

    fn tiny_layout() -> CodeLayout {
        CodeLayout::generate(&WorkloadProfile::tiny(7))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CodeLayout::generate(&WorkloadProfile::tiny(3));
        let b = CodeLayout::generate(&WorkloadProfile::tiny(3));
        assert_eq!(a.summary(), b.summary());
        assert_eq!(a.blocks().len(), b.blocks().len());
        for (x, y) in a.blocks().iter().zip(b.blocks().iter()) {
            assert_eq!(x.block, y.block);
            assert_eq!(x.flow, y.flow);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = CodeLayout::generate(&WorkloadProfile::tiny(3));
        let b = CodeLayout::generate(&WorkloadProfile::tiny(4));
        let differs = a.blocks().len() != b.blocks().len()
            || a.blocks()
                .iter()
                .zip(b.blocks().iter())
                .any(|(x, y)| x.flow != y.flow || x.block != y.block);
        assert!(differs);
    }

    #[test]
    fn footprint_close_to_target() {
        let profile = WorkloadProfile::tiny(11);
        let layout = CodeLayout::generate(&profile);
        let summary = layout.summary();
        let target = profile.footprint_bytes;
        assert!(summary.footprint_bytes >= target);
        assert!(
            summary.footprint_bytes < target + 64 * 1024,
            "footprint {} overshoots target {target}",
            summary.footprint_bytes
        );
        assert_eq!(
            summary.footprint_bytes,
            layout.code_end().raw() - layout.code_base().raw()
        );
    }

    #[test]
    fn blocks_are_contiguous_and_sorted() {
        let layout = tiny_layout();
        let mut expected = CODE_BASE;
        for b in layout.blocks() {
            assert_eq!(
                b.block.start, expected,
                "blocks must be laid out contiguously"
            );
            expected = b.block.fall_through();
        }
        assert_eq!(expected, layout.code_end());
    }

    #[test]
    fn every_block_terminates_in_a_branch_consistent_with_flow() {
        let layout = tiny_layout();
        for b in layout.blocks() {
            let term = b.terminator();
            assert_eq!(term.kind, b.flow.kind());
            assert_eq!(term.pc, b.branch_pc());
            match &b.flow {
                ControlFlow::Conditional { taken, .. } => {
                    assert_eq!(term.target, Some(layout.block(*taken).start()));
                }
                ControlFlow::Jump { target } => {
                    assert_eq!(term.target, Some(layout.block(*target).start()));
                }
                ControlFlow::Call { callee } => {
                    let entry = layout.function(*callee).entry;
                    assert_eq!(term.target, Some(layout.block(entry).start()));
                }
                ControlFlow::IndirectJump { targets } => {
                    assert!(term.target.is_none());
                    assert!(!targets.is_empty());
                }
                ControlFlow::IndirectCall { callees } => {
                    assert!(term.target.is_none());
                    assert!(!callees.is_empty());
                }
                ControlFlow::Return => assert!(term.target.is_none()),
            }
        }
    }

    #[test]
    fn conditional_and_call_blocks_have_fall_through() {
        let layout = tiny_layout();
        for b in layout.blocks() {
            match b.flow {
                ControlFlow::Conditional { .. }
                | ControlFlow::Call { .. }
                | ControlFlow::IndirectCall { .. } => {
                    let ft = layout.fall_through(b.id);
                    assert!(
                        ft.is_some(),
                        "block {:?} of kind {:?} must have a fall-through successor",
                        b.id,
                        b.flow.kind()
                    );
                    let ft = layout.block(ft.unwrap());
                    assert_eq!(ft.start(), b.block.fall_through());
                    assert_eq!(ft.function, b.function);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn last_block_of_every_function_returns_or_jumps() {
        let layout = tiny_layout();
        for f in layout.functions() {
            let last = BlockId(f.first_block + f.num_blocks - 1);
            let kind = layout.block(last).flow.kind();
            assert!(
                matches!(kind, BranchKind::Return | BranchKind::DirectJump),
                "function {:?} ends in {kind}",
                f.id
            );
        }
    }

    #[test]
    fn block_lookup_by_address() {
        let layout = tiny_layout();
        for b in layout.blocks().iter().step_by(7) {
            assert_eq!(layout.block_at(b.start()), Some(b.id));
            assert_eq!(layout.block_containing(b.start()), Some(b.id));
            assert_eq!(layout.block_containing(b.branch_pc()), Some(b.id));
            if b.block.instructions > 1 {
                assert_eq!(
                    layout.block_containing(b.start().add_instructions(1)),
                    Some(b.id)
                );
            }
        }
        assert_eq!(layout.block_containing(Addr::new(0)), None);
        assert_eq!(layout.block_containing(layout.code_end()), None);
    }

    #[test]
    fn next_branch_lookup_walks_forward() {
        let layout = tiny_layout();
        let first = &layout.blocks()[0];
        assert_eq!(
            layout.next_branch_at_or_after(first.start()),
            Some(first.id)
        );
        // Just past the first block's branch, the next branch is block 1's.
        let after = first.branch_pc().add_instructions(1);
        assert_eq!(layout.next_branch_at_or_after(after), Some(BlockId(1)));
        assert_eq!(layout.next_branch_at_or_after(layout.code_end()), None);
    }

    #[test]
    fn branches_by_line_index_is_complete_and_sorted() {
        let layout = tiny_layout();
        let geom = layout.geometry();
        let mut total = 0;
        for b in layout.blocks() {
            let line = geom.line_of(b.branch_pc());
            assert!(
                layout.branches_in_line(line).contains(&b.id),
                "branch of block {:?} missing from line index",
                b.id
            );
        }
        // Every indexed branch really lives in that line, in address order.
        let mut line_ids: Vec<_> = layout
            .blocks()
            .iter()
            .map(|b| geom.line_of(b.branch_pc()))
            .collect();
        line_ids.sort_unstable();
        line_ids.dedup();
        for line in line_ids {
            let ids = layout.branches_in_line(line);
            total += ids.len();
            let mut prev = None;
            for &id in ids {
                let pc = layout.block(id).branch_pc();
                assert_eq!(geom.line_of(pc), line);
                if let Some(p) = prev {
                    assert!(pc > p, "line index must be sorted by branch pc");
                }
                prev = Some(pc);
            }
        }
        assert_eq!(total, layout.blocks().len());
        assert!(layout.branches_in_line(CacheLine(1)).is_empty());
    }

    #[test]
    fn dispatcher_calls_service_roots_and_loops() {
        let layout = tiny_layout();
        let dispatcher = layout.function(layout.dispatcher());
        assert!(dispatcher.is_hot);
        assert!(!layout.service_roots().is_empty());
        let ids: Vec<_> = dispatcher.block_ids().collect();
        let last = layout.block(*ids.last().unwrap());
        match &last.flow {
            ControlFlow::Jump { target } => assert_eq!(*target, dispatcher.entry),
            other => panic!("dispatcher must close with a jump, got {other:?}"),
        }
        let n_calls = ids
            .iter()
            .filter(|&&id| matches!(layout.block(id).flow, ControlFlow::Call { .. }))
            .count();
        assert_eq!(n_calls, ids.len() - 1);
        for &root in layout.service_roots() {
            assert_ne!(root, layout.dispatcher());
        }
    }

    #[test]
    fn calls_never_target_the_dispatcher() {
        let layout = tiny_layout();
        for b in layout.blocks() {
            match &b.flow {
                ControlFlow::Call { callee } => assert_ne!(callee.0, 0),
                ControlFlow::IndirectCall { callees } => {
                    assert!(callees.iter().all(|c| c.0 != 0))
                }
                _ => {}
            }
        }
    }

    #[test]
    fn conditional_targets_stay_within_the_function() {
        let layout = tiny_layout();
        for b in layout.blocks() {
            if let ControlFlow::Conditional { taken, .. } = &b.flow {
                assert_eq!(layout.block(*taken).function, b.function);
            }
        }
    }

    #[test]
    fn larger_profiles_generate_more_blocks() {
        let small = CodeLayout::generate(&WorkloadProfile::tiny(5));
        let big = CodeLayout::generate(&WorkloadProfile::tiny(5).with_footprint_bytes(160 * 1024));
        assert!(big.blocks().len() > small.blocks().len());
        assert!(big.summary().instructions > small.summary().instructions);
    }

    #[test]
    fn full_profile_generation_reaches_multi_mb_footprints() {
        // Keep this test moderate: Nutch at 1.6 MB is the smallest full
        // profile and still exercises the multi-thousand-function path.
        let layout = CodeLayout::generate(&WorkloadKind::Nutch.profile());
        let summary = layout.summary();
        assert!(summary.footprint_bytes >= 1_600 * 1024);
        assert!(summary.functions > 1000);
        assert!(summary.conditional_branches > 10_000);
        assert!(format!("{summary}").contains("functions"));
    }
}
