//! Dynamic control-flow trace generation.
//!
//! A [`TraceGenerator`] walks a [`CodeLayout`] the way the real workload's
//! threads walk their text segment: it starts at the dispatcher, follows
//! calls and returns through a bounded call stack, evaluates each conditional
//! branch's [`BranchBehavior`](crate::layout::BranchBehavior) with per-branch
//! state, and emits one [`DynamicBlock`] per executed basic block.
//!
//! The generator is deterministic for a given layout and seed, and the
//! resulting stream is *self-consistent*: consecutive records satisfy
//! `next.start() == prev.next_start()`, which the simulator relies on as its
//! oracle execution path.

use crate::layout::{BlockId, BranchBehavior, CodeLayout, ControlFlow};
use sim_core::rng::SimRng;
use sim_core::{BranchOutcome, DynamicBlock};

/// Streaming generator of the dynamic basic-block trace.
///
/// # Example
///
/// ```
/// use workloads::{CodeLayout, TraceGenerator, WorkloadProfile};
///
/// let profile = WorkloadProfile::tiny(42);
/// let layout = CodeLayout::generate(&profile);
/// let mut gen = TraceGenerator::new(&layout);
/// let trace: Vec<_> = gen.by_ref().take(1000).collect();
/// assert_eq!(trace.len(), 1000);
/// // The trace is a connected path through the code.
/// for pair in trace.windows(2) {
///     assert_eq!(pair[1].start(), pair[0].next_start());
/// }
/// ```
#[derive(Clone, Debug)]
pub struct TraceGenerator<'a> {
    layout: &'a CodeLayout,
    rng: SimRng,
    current: BlockId,
    call_stack: Vec<BlockId>,
    /// Per-static-block execution counts (loop positions, pattern phases),
    /// indexed by [`BlockId`]: a flat array instead of a hash map, since the
    /// lookup runs once per dynamic conditional branch.
    branch_executions: Box<[u32]>,
    instructions: u64,
    blocks_emitted: u64,
    elided_calls: u64,
    consecutive_jumps: u32,
    forced_redirects: u64,
    blocks_in_request: u32,
    blocks_in_activation: u32,
    exhausted_loops: u64,
}

/// Maximum number of consecutive unconditional jumps the generator follows
/// before treating the thread as stuck and redirecting it to the dispatcher
/// (the synthetic analogue of an OS re-schedule). Ordinary code never chains
/// this many unconditional jumps.
const MAX_CONSECUTIVE_JUMPS: u32 = 64;

/// Soft budget, in basic blocks, for a single "request": one trip from the
/// dispatcher into a service call tree and back. Once a request exceeds
/// this budget the generator stops re-entering backward loops and stops
/// descending into new callees, so control unwinds back to the dispatcher.
/// Randomly generated nested loops could otherwise multiply into dwell times
/// no real request-processing code exhibits, which would collapse the
/// instruction working set the workloads are meant to exercise.
const REQUEST_SOFT_BUDGET: u32 = 8_192;

/// Hard budget: if a request runs this long despite the soft unwinding, the
/// generator redirects to the dispatcher outright (the analogue of an OS
/// preemption at the end of a time slice).
const REQUEST_HARD_BUDGET: u32 = 4 * REQUEST_SOFT_BUDGET;

/// Soft cap on the number of basic blocks executed within a single function
/// activation (between call/return transfers). Beyond it, backward
/// conditional branches fall through, so randomly generated nested loops
/// cannot multiply into single-function dwell times that would collapse the
/// active instruction working set.
const ACTIVATION_SOFT_CAP: u32 = 256;

impl<'a> TraceGenerator<'a> {
    /// Creates a generator starting at the layout's dispatcher entry, seeded
    /// from the workload profile.
    pub fn new(layout: &'a CodeLayout) -> Self {
        Self::with_seed(layout, layout.profile().seed ^ 0x7261_6365_0000_0001)
    }

    /// Creates a generator with an explicit seed (useful for generating
    /// independent samples of the same workload).
    pub fn with_seed(layout: &'a CodeLayout, seed: u64) -> Self {
        TraceGenerator {
            layout,
            rng: SimRng::seeded(seed),
            current: layout.entry_block(),
            call_stack: Vec::with_capacity(layout.profile().max_call_depth + 1),
            branch_executions: vec![0; layout.blocks().len()].into_boxed_slice(),
            instructions: 0,
            blocks_emitted: 0,
            elided_calls: 0,
            consecutive_jumps: 0,
            forced_redirects: 0,
            blocks_in_request: 0,
            blocks_in_activation: 0,
            exhausted_loops: 0,
        }
    }

    /// Total instructions emitted so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Total basic blocks emitted so far.
    pub fn blocks_emitted(&self) -> u64 {
        self.blocks_emitted
    }

    /// Current call-stack depth.
    pub fn call_depth(&self) -> usize {
        self.call_stack.len()
    }

    /// Number of call sites elided because the call stack hit the profile's
    /// depth bound. Should stay a tiny fraction of all calls.
    pub fn elided_calls(&self) -> u64 {
        self.elided_calls
    }

    /// Number of times the generator redirected a stuck jump chain back to
    /// the dispatcher. Should be zero or near-zero for well-formed layouts.
    pub fn forced_redirects(&self) -> u64 {
        self.forced_redirects
    }

    /// Number of backward conditional branches forced to fall through because
    /// the current request exceeded its soft block budget.
    pub fn exhausted_loops(&self) -> u64 {
        self.exhausted_loops
    }

    /// `true` while the current request is over its soft budget and the
    /// generator is unwinding towards the dispatcher.
    fn over_soft_budget(&self) -> bool {
        self.blocks_in_request > REQUEST_SOFT_BUDGET
    }

    fn conditional_outcome(&mut self, id: BlockId, behavior: BranchBehavior) -> bool {
        let state = &mut self.branch_executions[id.0 as usize];
        let n = *state;
        *state = state.wrapping_add(1);
        match behavior {
            BranchBehavior::Biased { p_taken } | BranchBehavior::DataDependent { p_taken } => {
                self.rng.chance(p_taken)
            }
            BranchBehavior::Loop { trip_count } => (n % trip_count) != trip_count - 1,
            BranchBehavior::Pattern { period, bits } => {
                let pos = n % u32::from(period);
                (bits >> pos) & 1 == 1
            }
        }
    }

    fn step(&mut self) -> DynamicBlock {
        let static_block = self.layout.block(self.current);
        let id = static_block.id;
        let flow = static_block.flow.clone();
        let max_depth = self.layout.profile().max_call_depth;

        self.blocks_in_request = self.blocks_in_request.saturating_add(1);
        self.blocks_in_activation = self.blocks_in_activation.saturating_add(1);
        let (taken, next) = match flow {
            ControlFlow::Conditional { taken, behavior } => {
                let mut is_taken = self.conditional_outcome(id, behavior);
                // Dwell valves: once a request or a single function
                // activation has run for an implausibly long time, stop
                // re-entering backward loops so control flows forward towards
                // a return.
                if is_taken
                    && (self.over_soft_budget() || self.blocks_in_activation > ACTIVATION_SOFT_CAP)
                    && self.layout.block(taken).start() <= static_block.branch_pc()
                {
                    is_taken = false;
                    self.exhausted_loops += 1;
                }
                if is_taken {
                    (true, taken)
                } else {
                    let ft = self
                        .layout
                        .fall_through(id)
                        .expect("conditional blocks always have a fall-through");
                    (false, ft)
                }
            }
            ControlFlow::Jump { target } => {
                self.consecutive_jumps += 1;
                (true, self.jump_or_redirect(target))
            }
            ControlFlow::IndirectJump { ref targets } => {
                self.consecutive_jumps += 1;
                let t = targets[self.rng.index(targets.len())];
                (true, self.jump_or_redirect(t))
            }
            ControlFlow::Call { callee } => self.do_call(id, callee, max_depth),
            ControlFlow::IndirectCall { ref callees } => {
                let callee = callees[self.rng.index(callees.len())];
                self.do_call(id, callee, max_depth)
            }
            ControlFlow::Return => {
                self.blocks_in_activation = 0;
                let next = self
                    .call_stack
                    .pop()
                    .unwrap_or_else(|| self.layout.entry_block());
                (true, next)
            }
        };
        if !matches!(
            self.layout.block(id).flow,
            ControlFlow::Jump { .. } | ControlFlow::IndirectJump { .. }
        ) {
            self.consecutive_jumps = 0;
        }

        // A new request starts whenever control is back at the dispatcher
        // level (empty call stack), or when the hard budget forces a
        // preemption-style redirect.
        let next = if self.blocks_in_request > REQUEST_HARD_BUDGET {
            self.forced_redirects += 1;
            self.call_stack.clear();
            self.layout.entry_block()
        } else {
            next
        };
        if self.call_stack.is_empty() || next == self.layout.entry_block() {
            self.blocks_in_request = 0;
        }

        let next_pc = self.layout.block(next).start();
        let outcome = if taken {
            BranchOutcome::taken(next_pc)
        } else {
            BranchOutcome::not_taken(next_pc)
        };
        let dynamic = DynamicBlock::new(static_block.block, outcome);

        self.instructions += dynamic.instructions();
        self.blocks_emitted += 1;
        self.current = next;
        dynamic
    }

    /// Follows a jump target unless the generator has chained too many
    /// unconditional jumps, in which case it redirects to the dispatcher.
    fn jump_or_redirect(&mut self, target: BlockId) -> BlockId {
        if self.consecutive_jumps > MAX_CONSECUTIVE_JUMPS {
            self.consecutive_jumps = 0;
            self.forced_redirects += 1;
            self.call_stack.clear();
            self.layout.entry_block()
        } else {
            target
        }
    }

    fn do_call(
        &mut self,
        call_block: BlockId,
        callee: crate::layout::FunctionId,
        max_depth: usize,
    ) -> (bool, BlockId) {
        let return_to = self
            .layout
            .fall_through(call_block)
            .expect("call blocks always have a fall-through");
        if self.call_stack.len() >= max_depth || self.over_soft_budget() {
            // Depth bound reached, or the request is over budget and should
            // unwind: elide the call, as if the callee returned immediately.
            self.elided_calls += 1;
            return (false, return_to);
        }
        self.blocks_in_activation = 0;
        self.call_stack.push(return_to);
        let entry = self.layout.function(callee).entry;
        (true, entry)
    }
}

impl Iterator for TraceGenerator<'_> {
    type Item = DynamicBlock;

    fn next(&mut self) -> Option<Self::Item> {
        Some(self.step())
    }
}

/// A fully materialised trace: the oracle execution path handed to the
/// simulator.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    blocks: Vec<DynamicBlock>,
    instructions: u64,
}

impl Trace {
    /// Generates a trace containing at least `min_instructions` instructions
    /// (and the block that crosses that boundary).
    pub fn generate(layout: &CodeLayout, min_instructions: u64) -> Self {
        let mut gen = TraceGenerator::new(layout);
        let mut blocks = Vec::new();
        while gen.instructions() < min_instructions {
            blocks.push(gen.step());
        }
        let instructions = gen.instructions();
        Trace {
            blocks,
            instructions,
        }
    }

    /// Generates a trace of exactly `num_blocks` basic blocks.
    pub fn generate_blocks(layout: &CodeLayout, num_blocks: usize) -> Self {
        let mut gen = TraceGenerator::new(layout);
        let blocks: Vec<_> = gen.by_ref().take(num_blocks).collect();
        let instructions = blocks.iter().map(|b| b.instructions()).sum();
        Trace {
            blocks,
            instructions,
        }
    }

    /// Reassembles a trace from externally stored dynamic blocks (the
    /// artifact-cache decode path; see [`crate::codec`]). The instruction
    /// count is recomputed from the blocks.
    pub fn from_blocks(blocks: Vec<DynamicBlock>) -> Self {
        let instructions = blocks.iter().map(|b| b.instructions()).sum();
        Trace {
            blocks,
            instructions,
        }
    }

    /// The dynamic blocks in execution order.
    pub fn blocks(&self) -> &[DynamicBlock] {
        &self.blocks
    }

    /// Total instruction count.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Number of dynamic basic blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if the trace contains no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{WorkloadKind, WorkloadProfile};
    use sim_core::BranchKind;

    fn tiny_layout() -> CodeLayout {
        CodeLayout::generate(&WorkloadProfile::tiny(21))
    }

    #[test]
    fn trace_is_deterministic() {
        let layout = tiny_layout();
        let a = Trace::generate_blocks(&layout, 5000);
        let b = Trace::generate_blocks(&layout, 5000);
        assert_eq!(a, b);
    }

    #[test]
    fn trace_is_a_connected_path() {
        let layout = tiny_layout();
        let trace = Trace::generate_blocks(&layout, 20_000);
        for pair in trace.blocks().windows(2) {
            assert_eq!(
                pair[1].start(),
                pair[0].next_start(),
                "consecutive dynamic blocks must be linked"
            );
        }
    }

    #[test]
    fn every_dynamic_block_exists_in_the_layout() {
        let layout = tiny_layout();
        let trace = Trace::generate_blocks(&layout, 10_000);
        for d in trace.blocks() {
            let id = layout
                .block_at(d.start())
                .expect("dynamic block must exist statically");
            assert_eq!(layout.block(id).block, d.block);
        }
    }

    #[test]
    fn unconditional_branches_are_always_taken_in_the_trace() {
        let layout = tiny_layout();
        let trace = Trace::generate_blocks(&layout, 20_000);
        for d in trace.blocks() {
            let kind = d.block.terminator.unwrap().kind;
            if kind.is_unconditional() && d.outcome.taken {
                continue;
            }
            if kind == BranchKind::Conditional {
                continue;
            }
            // The only allowed not-taken unconditional branches are elided
            // calls at the depth bound.
            assert!(
                kind.is_call() && !d.outcome.taken,
                "unexpected not-taken {kind} branch"
            );
        }
    }

    #[test]
    fn taken_conditionals_go_to_the_static_target() {
        let layout = tiny_layout();
        let trace = Trace::generate_blocks(&layout, 20_000);
        for d in trace.blocks() {
            let term = d.block.terminator.unwrap();
            if term.kind == BranchKind::Conditional {
                if d.outcome.taken {
                    assert_eq!(Some(d.outcome.next_pc), term.target);
                } else {
                    assert_eq!(d.outcome.next_pc, d.block.fall_through());
                }
            }
        }
    }

    #[test]
    fn call_depth_stays_bounded_and_elisions_are_rare() {
        let layout = tiny_layout();
        let max_depth = layout.profile().max_call_depth;
        let mut gen = TraceGenerator::new(&layout);
        let mut calls = 0u64;
        for _ in 0..50_000 {
            let d = gen.step();
            assert!(gen.call_depth() <= max_depth);
            if d.block.terminator.unwrap().kind.is_call() {
                calls += 1;
            }
        }
        assert!(calls > 0);
        assert!(
            gen.elided_calls() * 10 < calls,
            "elided {} of {} calls",
            gen.elided_calls(),
            calls
        );
    }

    #[test]
    fn generate_by_instruction_budget() {
        let layout = tiny_layout();
        let trace = Trace::generate(&layout, 100_000);
        assert!(trace.instructions() >= 100_000);
        assert!(!trace.is_empty());
        assert_eq!(
            trace.instructions(),
            trace.blocks().iter().map(|b| b.instructions()).sum::<u64>()
        );
        let shorter = Trace::generate(&layout, 1);
        assert_eq!(shorter.len(), 1);
    }

    #[test]
    fn different_generator_seeds_produce_different_paths() {
        let layout = tiny_layout();
        let a: Vec<_> = TraceGenerator::with_seed(&layout, 1).take(2000).collect();
        let b: Vec<_> = TraceGenerator::with_seed(&layout, 2).take(2000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn trace_revisits_code_showing_temporal_reuse() {
        // Server workloads re-execute the same services over and over; the
        // trace must therefore revisit blocks, otherwise temporal-streaming
        // prefetchers (PIF/SHIFT) would have nothing to learn.
        let layout = tiny_layout();
        let trace = Trace::generate_blocks(&layout, 30_000);
        let distinct: std::collections::HashSet<_> =
            trace.blocks().iter().map(|b| b.start()).collect();
        assert!(distinct.len() < trace.len() / 2);
    }

    #[test]
    fn full_profile_trace_exercises_a_large_footprint() {
        let layout = CodeLayout::generate(&WorkloadKind::Nutch.profile());
        let trace = Trace::generate_blocks(&layout, 200_000);
        let geom = layout.geometry();
        let lines: std::collections::HashSet<_> = trace
            .blocks()
            .iter()
            .map(|b| geom.line_of(b.start()))
            .collect();
        // The active footprint must far exceed the 512-line (32 KB) L1-I.
        assert!(
            lines.len() > 1200,
            "active footprint of {} lines is too small",
            lines.len()
        );
    }
}
