//! Binary serialization of generated workloads.
//!
//! The campaign layer's content-addressed artifact cache stores generated
//! [`CodeLayout`]s and [`Trace`]s on disk so that generation is paid once per
//! (profile, run length) across campaigns and worker processes. This module
//! is the codec for those artifacts: a compact little-endian byte format that
//! round-trips a layout and its dynamic trace exactly.
//!
//! The encoding exploits the layout invariants that generation guarantees
//! (and the layout tests assert):
//!
//! * blocks are laid out contiguously from [`crate::CODE_BASE`], so block start
//!   addresses are implied by the instruction counts;
//! * every function's blocks form one contiguous id range and its entry is
//!   its first block, so functions encode as `(num_blocks, is_hot)` pairs;
//! * every terminator's kind and direct target are determined by the block's
//!   [`ControlFlow`], so terminators are rebuilt rather than stored;
//! * a trace is a connected path (`next.start() == prev.next_start()`), so a
//!   dynamic block encodes as a static block id plus one taken bit, with only
//!   the final record's `next_pc` stored explicitly.
//!
//! Decoding never panics on malformed input: every read is bounds-checked
//! and every invariant is validated, reporting a [`CodecError`] that names
//! the offending field in the style of
//! [`ProfileError`](crate::profile::ProfileError).

use crate::layout::{BlockId, BranchBehavior, CodeLayout, ControlFlow, Function, FunctionId};
use crate::profile::{WorkloadKind, WorkloadProfile};
use crate::trace::Trace;
use sim_core::{Addr, BranchOutcome, DynamicBlock, LineGeometry, MAX_BASIC_BLOCK_INSTRUCTIONS};
use std::fmt;

/// A malformed-artifact error, naming the field that failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// Dotted path of the field being decoded when the error was detected.
    pub field: &'static str,
    /// What was wrong with it.
    pub message: String,
}

impl CodecError {
    fn new(field: &'static str, message: impl Into<String>) -> Self {
        CodecError {
            field,
            message: message.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "workload artifact field `{}`: {}",
            self.field, self.message
        )
    }
}

impl std::error::Error for CodecError {}

/// Bounds-checked little-endian reader over an artifact payload.
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::new(
                field,
                format!("truncated: need {n} bytes, {} left", self.remaining()),
            ));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self, field: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, field)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, field: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, field)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, field: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, field)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads an `f64` stored as its IEEE-754 bit pattern.
    pub fn f64(&mut self, field: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(field)?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self, field: &'static str) -> Result<String, CodecError> {
        let len = self.u32(field)? as usize;
        let bytes = self.take(len, field)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError::new(field, format!("invalid UTF-8: {e}")))
    }

    /// Reads a `u64` that must fit the given inclusive range.
    fn u64_in(&mut self, field: &'static str, lo: u64, hi: u64) -> Result<u64, CodecError> {
        let v = self.u64(field)?;
        if v < lo || v > hi {
            return Err(CodecError::new(
                field,
                format!("value {v} outside [{lo}, {hi}]"),
            ));
        }
        Ok(v)
    }
}

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Canonical identity listing of a profile: every field that influences
/// generation, in declaration order, rendered deterministically.
///
/// The campaign artifact cache hashes this (together with the run length) to
/// form the content address of a generated workload. Any change to
/// [`WorkloadProfile`]'s fields must extend this listing *and* bump the
/// artifact format version in the campaign layer.
pub fn profile_fingerprint(profile: &WorkloadProfile) -> String {
    let t = &profile.terminators;
    let c = &profile.conditionals;
    let b = &profile.backend;
    format!(
        "workload-profile-v1 kind={} seed={} footprint_bytes={} \
         mean_block_instructions={:?} mean_function_blocks={:?} \
         terminators=({:?},{:?},{:?},{:?},{:?}) \
         conditionals=({:?},{:?},{:?},{:?},{:?}) \
         cond_target_mean_lines={:?} cond_backward_fraction={:?} \
         max_call_depth={} service_roots={} hot_callee_fraction={:?} \
         utility_fraction={:?} backend=({:?},{:?},{:?},{})",
        profile.kind.name(),
        profile.seed,
        profile.footprint_bytes,
        profile.mean_block_instructions,
        profile.mean_function_blocks,
        t.call,
        t.indirect_call,
        t.jump,
        t.indirect_jump,
        t.early_return,
        c.loop_backedge,
        c.pattern,
        c.data_dependent,
        c.bias_mean,
        c.mean_trip_count,
        profile.cond_target_mean_lines,
        profile.cond_backward_fraction,
        profile.max_call_depth,
        profile.service_roots,
        profile.hot_callee_fraction,
        profile.utility_fraction,
        b.load_fraction,
        b.l1d_miss_rate,
        b.llc_miss_rate,
        b.base_latency,
    )
}

fn encode_profile(profile: &WorkloadProfile, out: &mut Vec<u8>) {
    let kind_index = WorkloadKind::ALL
        .iter()
        .position(|&k| k == profile.kind)
        .expect("every workload kind is in WorkloadKind::ALL") as u8;
    put_u8(out, kind_index);
    put_string(out, &profile.description);
    put_u64(out, profile.seed);
    put_u64(out, profile.footprint_bytes);
    put_f64(out, profile.mean_block_instructions);
    put_f64(out, profile.mean_function_blocks);
    put_f64(out, profile.terminators.call);
    put_f64(out, profile.terminators.indirect_call);
    put_f64(out, profile.terminators.jump);
    put_f64(out, profile.terminators.indirect_jump);
    put_f64(out, profile.terminators.early_return);
    put_f64(out, profile.conditionals.loop_backedge);
    put_f64(out, profile.conditionals.pattern);
    put_f64(out, profile.conditionals.data_dependent);
    put_f64(out, profile.conditionals.bias_mean);
    put_f64(out, profile.conditionals.mean_trip_count);
    put_f64(out, profile.cond_target_mean_lines);
    put_f64(out, profile.cond_backward_fraction);
    put_u64(out, profile.max_call_depth as u64);
    put_u64(out, profile.service_roots as u64);
    put_f64(out, profile.hot_callee_fraction);
    put_f64(out, profile.utility_fraction);
    put_f64(out, profile.backend.load_fraction);
    put_f64(out, profile.backend.l1d_miss_rate);
    put_f64(out, profile.backend.llc_miss_rate);
    put_u64(out, profile.backend.base_latency);
}

fn decode_profile(r: &mut ByteReader<'_>) -> Result<WorkloadProfile, CodecError> {
    let kind_index = r.u8("profile.kind")? as usize;
    let kind = *WorkloadKind::ALL.get(kind_index).ok_or_else(|| {
        CodecError::new(
            "profile.kind",
            format!(
                "kind index {kind_index} out of range (have {})",
                WorkloadKind::ALL.len()
            ),
        )
    })?;
    let description = r.string("profile.description")?;
    let mut profile = kind.profile();
    profile.description = description;
    profile.seed = r.u64("profile.seed")?;
    profile.footprint_bytes = r.u64("profile.footprint_bytes")?;
    profile.mean_block_instructions = r.f64("profile.mean_block_instructions")?;
    profile.mean_function_blocks = r.f64("profile.mean_function_blocks")?;
    profile.terminators.call = r.f64("profile.terminators.call")?;
    profile.terminators.indirect_call = r.f64("profile.terminators.indirect_call")?;
    profile.terminators.jump = r.f64("profile.terminators.jump")?;
    profile.terminators.indirect_jump = r.f64("profile.terminators.indirect_jump")?;
    profile.terminators.early_return = r.f64("profile.terminators.early_return")?;
    profile.conditionals.loop_backedge = r.f64("profile.conditionals.loop_backedge")?;
    profile.conditionals.pattern = r.f64("profile.conditionals.pattern")?;
    profile.conditionals.data_dependent = r.f64("profile.conditionals.data_dependent")?;
    profile.conditionals.bias_mean = r.f64("profile.conditionals.bias_mean")?;
    profile.conditionals.mean_trip_count = r.f64("profile.conditionals.mean_trip_count")?;
    profile.cond_target_mean_lines = r.f64("profile.cond_target_mean_lines")?;
    profile.cond_backward_fraction = r.f64("profile.cond_backward_fraction")?;
    profile.max_call_depth = r.u64("profile.max_call_depth")? as usize;
    profile.service_roots = r.u64("profile.service_roots")? as usize;
    profile.hot_callee_fraction = r.f64("profile.hot_callee_fraction")?;
    profile.utility_fraction = r.f64("profile.utility_fraction")?;
    profile.backend.load_fraction = r.f64("profile.backend.load_fraction")?;
    profile.backend.l1d_miss_rate = r.f64("profile.backend.l1d_miss_rate")?;
    profile.backend.llc_miss_rate = r.f64("profile.backend.llc_miss_rate")?;
    profile.backend.base_latency = r.u64("profile.backend.base_latency")?;
    Ok(profile)
}

const FLOW_CONDITIONAL: u8 = 0;
const FLOW_JUMP: u8 = 1;
const FLOW_INDIRECT_JUMP: u8 = 2;
const FLOW_CALL: u8 = 3;
const FLOW_INDIRECT_CALL: u8 = 4;
const FLOW_RETURN: u8 = 5;

const BEHAVIOR_BIASED: u8 = 0;
const BEHAVIOR_LOOP: u8 = 1;
const BEHAVIOR_PATTERN: u8 = 2;
const BEHAVIOR_DATA_DEPENDENT: u8 = 3;

fn encode_flow(flow: &ControlFlow, out: &mut Vec<u8>) {
    match flow {
        ControlFlow::Conditional { taken, behavior } => {
            put_u8(out, FLOW_CONDITIONAL);
            put_u32(out, taken.0);
            match *behavior {
                BranchBehavior::Biased { p_taken } => {
                    put_u8(out, BEHAVIOR_BIASED);
                    put_f64(out, p_taken);
                }
                BranchBehavior::Loop { trip_count } => {
                    put_u8(out, BEHAVIOR_LOOP);
                    put_u32(out, trip_count);
                }
                BranchBehavior::Pattern { period, bits } => {
                    put_u8(out, BEHAVIOR_PATTERN);
                    put_u8(out, period);
                    put_u32(out, bits);
                }
                BranchBehavior::DataDependent { p_taken } => {
                    put_u8(out, BEHAVIOR_DATA_DEPENDENT);
                    put_f64(out, p_taken);
                }
            }
        }
        ControlFlow::Jump { target } => {
            put_u8(out, FLOW_JUMP);
            put_u32(out, target.0);
        }
        ControlFlow::IndirectJump { targets } => {
            put_u8(out, FLOW_INDIRECT_JUMP);
            put_u32(out, targets.len() as u32);
            for t in targets {
                put_u32(out, t.0);
            }
        }
        ControlFlow::Call { callee } => {
            put_u8(out, FLOW_CALL);
            put_u32(out, callee.0);
        }
        ControlFlow::IndirectCall { callees } => {
            put_u8(out, FLOW_INDIRECT_CALL);
            put_u32(out, callees.len() as u32);
            for c in callees {
                put_u32(out, c.0);
            }
        }
        ControlFlow::Return => put_u8(out, FLOW_RETURN),
    }
}

fn decode_flow(
    r: &mut ByteReader<'_>,
    num_blocks: u32,
    num_functions: u32,
) -> Result<ControlFlow, CodecError> {
    let block_id = |r: &mut ByteReader<'_>, field| -> Result<BlockId, CodecError> {
        let id = r.u32(field)?;
        if id >= num_blocks {
            return Err(CodecError::new(
                field,
                format!("block id {id} out of range (have {num_blocks})"),
            ));
        }
        Ok(BlockId(id))
    };
    let function_id = |r: &mut ByteReader<'_>, field| -> Result<FunctionId, CodecError> {
        let id = r.u32(field)?;
        if id >= num_functions {
            return Err(CodecError::new(
                field,
                format!("function id {id} out of range (have {num_functions})"),
            ));
        }
        Ok(FunctionId(id))
    };
    let tag = r.u8("block.flow.tag")?;
    match tag {
        FLOW_CONDITIONAL => {
            let taken = block_id(r, "block.flow.taken")?;
            let behavior = match r.u8("block.flow.behavior.tag")? {
                BEHAVIOR_BIASED => BranchBehavior::Biased {
                    p_taken: r.f64("block.flow.behavior.p_taken")?,
                },
                BEHAVIOR_LOOP => {
                    let trip_count = r.u32("block.flow.behavior.trip_count")?;
                    if trip_count < 2 {
                        return Err(CodecError::new(
                            "block.flow.behavior.trip_count",
                            format!("loop trip count must be >= 2, got {trip_count}"),
                        ));
                    }
                    BranchBehavior::Loop { trip_count }
                }
                BEHAVIOR_PATTERN => {
                    let period = r.u8("block.flow.behavior.period")?;
                    if period == 0 || period > 32 {
                        return Err(CodecError::new(
                            "block.flow.behavior.period",
                            format!("pattern period must be in 1..=32, got {period}"),
                        ));
                    }
                    BranchBehavior::Pattern {
                        period,
                        bits: r.u32("block.flow.behavior.bits")?,
                    }
                }
                BEHAVIOR_DATA_DEPENDENT => BranchBehavior::DataDependent {
                    p_taken: r.f64("block.flow.behavior.p_taken")?,
                },
                other => {
                    return Err(CodecError::new(
                        "block.flow.behavior.tag",
                        format!("unknown behavior tag {other}"),
                    ))
                }
            };
            Ok(ControlFlow::Conditional { taken, behavior })
        }
        FLOW_JUMP => Ok(ControlFlow::Jump {
            target: block_id(r, "block.flow.target")?,
        }),
        FLOW_INDIRECT_JUMP => {
            let n = r.u32("block.flow.targets.len")?;
            if n == 0 || n > 1024 {
                return Err(CodecError::new(
                    "block.flow.targets.len",
                    format!("indirect jump target count {n} outside 1..=1024"),
                ));
            }
            let targets = (0..n)
                .map(|_| block_id(r, "block.flow.targets"))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(ControlFlow::IndirectJump { targets })
        }
        FLOW_CALL => Ok(ControlFlow::Call {
            callee: function_id(r, "block.flow.callee")?,
        }),
        FLOW_INDIRECT_CALL => {
            let n = r.u32("block.flow.callees.len")?;
            if n == 0 || n > 1024 {
                return Err(CodecError::new(
                    "block.flow.callees.len",
                    format!("indirect call callee count {n} outside 1..=1024"),
                ));
            }
            let callees = (0..n)
                .map(|_| function_id(r, "block.flow.callees"))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(ControlFlow::IndirectCall { callees })
        }
        FLOW_RETURN => Ok(ControlFlow::Return),
        other => Err(CodecError::new(
            "block.flow.tag",
            format!("unknown control-flow tag {other}"),
        )),
    }
}

/// Serializes `layout` to `out`.
pub fn encode_layout(layout: &CodeLayout, out: &mut Vec<u8>) {
    encode_profile(layout.profile(), out);
    put_u64(out, layout.geometry().line_bytes());
    let functions = layout.functions();
    put_u64(out, functions.len() as u64);
    for f in functions {
        put_u32(out, f.num_blocks);
        put_u8(out, u8::from(f.is_hot));
    }
    let blocks = layout.blocks();
    put_u64(out, blocks.len() as u64);
    for b in blocks {
        put_u8(out, b.block.instructions as u8);
        encode_flow(&b.flow, out);
    }
    put_u32(out, layout.dispatcher().0);
    let roots = layout.service_roots();
    put_u32(out, roots.len() as u32);
    for root in roots {
        put_u32(out, root.0);
    }
}

/// Deserializes a layout encoded by [`encode_layout`], rebuilding the
/// derived indexes (block addresses, terminators, branch-per-line index)
/// from the stored structure.
pub fn decode_layout(r: &mut ByteReader<'_>) -> Result<CodeLayout, CodecError> {
    let profile = decode_profile(r)?;
    let line_bytes = r.u64("layout.line_bytes")?;
    if !line_bytes.is_power_of_two() || !(16..=4096).contains(&line_bytes) {
        return Err(CodecError::new(
            "layout.line_bytes",
            format!("cache-line size {line_bytes} is not a power of two in 16..=4096"),
        ));
    }
    let geometry = LineGeometry::new(line_bytes);

    let num_functions = r.u64_in("layout.functions.len", 1, u32::MAX as u64)? as u32;
    let mut functions = Vec::with_capacity(num_functions as usize);
    let mut first_block = 0u32;
    for id in 0..num_functions {
        let num_blocks = r.u32("function.num_blocks")?;
        if num_blocks == 0 {
            return Err(CodecError::new(
                "function.num_blocks",
                format!("function {id} has zero blocks"),
            ));
        }
        let is_hot = match r.u8("function.is_hot")? {
            0 => false,
            1 => true,
            other => {
                return Err(CodecError::new(
                    "function.is_hot",
                    format!("flag must be 0 or 1, got {other}"),
                ))
            }
        };
        functions.push(Function {
            id: FunctionId(id),
            entry: BlockId(first_block),
            first_block,
            num_blocks,
            is_hot,
        });
        first_block = first_block.checked_add(num_blocks).ok_or_else(|| {
            CodecError::new("function.num_blocks", "total block count overflows u32")
        })?;
    }
    let expected_blocks = first_block;

    let num_blocks = r.u64_in("layout.blocks.len", 1, u32::MAX as u64)? as u32;
    if num_blocks != expected_blocks {
        return Err(CodecError::new(
            "layout.blocks.len",
            format!("{num_blocks} blocks stored but functions cover {expected_blocks}"),
        ));
    }
    let mut raw = Vec::with_capacity(num_blocks as usize);
    for _ in 0..num_blocks {
        let instructions = u64::from(r.u8("block.instructions")?);
        if !(1..=MAX_BASIC_BLOCK_INSTRUCTIONS).contains(&instructions) {
            return Err(CodecError::new(
                "block.instructions",
                format!(
                    "block size must be in 1..={MAX_BASIC_BLOCK_INSTRUCTIONS}, got {instructions}"
                ),
            ));
        }
        let flow = decode_flow(r, num_blocks, num_functions)?;
        raw.push((instructions, flow));
    }

    let dispatcher = r.u32("layout.dispatcher")?;
    if dispatcher >= num_functions {
        return Err(CodecError::new(
            "layout.dispatcher",
            format!("function id {dispatcher} out of range (have {num_functions})"),
        ));
    }
    let num_roots = r.u32("layout.service_roots.len")?;
    if num_roots == 0 || num_roots > num_functions {
        return Err(CodecError::new(
            "layout.service_roots.len",
            format!("service-root count {num_roots} outside 1..={num_functions}"),
        ));
    }
    let mut service_roots = Vec::with_capacity(num_roots as usize);
    for _ in 0..num_roots {
        let root = r.u32("layout.service_roots")?;
        if root >= num_functions {
            return Err(CodecError::new(
                "layout.service_roots",
                format!("function id {root} out of range (have {num_functions})"),
            ));
        }
        service_roots.push(FunctionId(root));
    }

    CodeLayout::from_parts(
        profile,
        geometry,
        raw,
        functions,
        service_roots,
        FunctionId(dispatcher),
    )
}

/// Serializes `trace` (generated over `layout`) to `out`.
///
/// Returns an error if the trace is not a path through `layout` — which
/// would indicate a caller bug, not a malformed file.
pub fn encode_trace(
    layout: &CodeLayout,
    trace: &Trace,
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    let blocks = trace.blocks();
    put_u64(out, blocks.len() as u64);
    put_u64(out, trace.instructions());
    let final_next_pc = blocks.last().map(|b| b.next_start().raw()).unwrap_or(0);
    put_u64(out, final_next_pc);
    for d in blocks {
        let id = layout.block_at(d.start()).ok_or_else(|| {
            CodecError::new(
                "trace.block",
                format!("dynamic block at {:?} not found in layout", d.start()),
            )
        })?;
        if layout.block(id).block != d.block {
            return Err(CodecError::new(
                "trace.block",
                format!(
                    "dynamic block at {:?} disagrees with the static layout",
                    d.start()
                ),
            ));
        }
        put_u32(out, id.0);
    }
    let mut bits = vec![0u8; blocks.len().div_ceil(8)];
    for (i, d) in blocks.iter().enumerate() {
        if d.outcome.taken {
            bits[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&bits);
    Ok(())
}

/// Deserializes a trace encoded by [`encode_trace`] against the same layout.
pub fn decode_trace(layout: &CodeLayout, r: &mut ByteReader<'_>) -> Result<Trace, CodecError> {
    let num_blocks = r.u64_in("trace.blocks.len", 0, 1 << 32)? as usize;
    let instructions = r.u64("trace.instructions")?;
    let final_next_pc = Addr::new(r.u64("trace.final_next_pc")?);
    let layout_blocks = layout.blocks().len() as u32;
    let mut ids = Vec::with_capacity(num_blocks);
    for _ in 0..num_blocks {
        let id = r.u32("trace.block_id")?;
        if id >= layout_blocks {
            return Err(CodecError::new(
                "trace.block_id",
                format!("block id {id} out of range (have {layout_blocks})"),
            ));
        }
        ids.push(BlockId(id));
    }
    let bits = r.take(num_blocks.div_ceil(8), "trace.taken_bits")?;
    let mut blocks = Vec::with_capacity(num_blocks);
    for (i, &id) in ids.iter().enumerate() {
        let next_pc = match ids.get(i + 1) {
            Some(&next) => layout.block(next).start(),
            None => final_next_pc,
        };
        let taken = bits[i / 8] >> (i % 8) & 1 == 1;
        let outcome = if taken {
            BranchOutcome::taken(next_pc)
        } else {
            BranchOutcome::not_taken(next_pc)
        };
        blocks.push(DynamicBlock::new(layout.block(id).block, outcome));
    }
    let trace = Trace::from_blocks(blocks);
    if trace.instructions() != instructions {
        return Err(CodecError::new(
            "trace.instructions",
            format!(
                "stored instruction count {instructions} disagrees with blocks ({})",
                trace.instructions()
            ),
        ));
    }
    Ok(trace)
}

/// Serializes a full generated workload (layout + trace) to `out`.
pub fn encode_workload(
    layout: &CodeLayout,
    trace: &Trace,
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    encode_layout(layout, out);
    encode_trace(layout, trace, out)
}

/// Deserializes a workload encoded by [`encode_workload`].
pub fn decode_workload(bytes: &[u8]) -> Result<(CodeLayout, Trace), CodecError> {
    let mut r = ByteReader::new(bytes);
    let layout = decode_layout(&mut r)?;
    let trace = decode_trace(&layout, &mut r)?;
    if r.remaining() != 0 {
        return Err(CodecError::new(
            "payload",
            format!("{} trailing bytes after the trace", r.remaining()),
        ));
    }
    Ok((layout, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::WorkloadProfile;

    fn roundtrip(profile: &WorkloadProfile, trace_blocks: usize) -> (CodeLayout, Trace) {
        let layout = CodeLayout::generate(profile);
        let trace = Trace::generate_blocks(&layout, trace_blocks);
        let mut bytes = Vec::new();
        encode_workload(&layout, &trace, &mut bytes).expect("encode");
        decode_workload(&bytes).expect("decode")
    }

    #[test]
    fn workload_roundtrips_exactly() {
        let profile = WorkloadProfile::tiny(42);
        let layout = CodeLayout::generate(&profile);
        let trace = Trace::generate_blocks(&layout, 5_000);
        let (layout2, trace2) = roundtrip(&profile, 5_000);

        assert_eq!(layout.profile(), layout2.profile());
        assert_eq!(layout.geometry(), layout2.geometry());
        assert_eq!(layout.blocks(), layout2.blocks());
        assert_eq!(layout.functions(), layout2.functions());
        assert_eq!(layout.service_roots(), layout2.service_roots());
        assert_eq!(layout.dispatcher(), layout2.dispatcher());
        assert_eq!(layout.code_end(), layout2.code_end());
        assert_eq!(trace, trace2);
    }

    #[test]
    fn line_index_is_rebuilt_identically() {
        let profile = WorkloadProfile::tiny(7);
        let (layout2, _) = roundtrip(&profile, 1_000);
        let layout = CodeLayout::generate(&profile);
        let geom = layout.geometry();
        for b in layout.blocks() {
            let line = geom.line_of(b.branch_pc());
            assert_eq!(
                layout.branches_in_line(line),
                layout2.branches_in_line(line)
            );
        }
        for b in layout.blocks().iter().step_by(11) {
            assert_eq!(
                layout.next_branch_at_or_after(b.start()),
                layout2.next_branch_at_or_after(b.start())
            );
        }
    }

    #[test]
    fn truncated_payload_is_rejected_with_the_field_name() {
        let profile = WorkloadProfile::tiny(3);
        let layout = CodeLayout::generate(&profile);
        let trace = Trace::generate_blocks(&layout, 500);
        let mut bytes = Vec::new();
        encode_workload(&layout, &trace, &mut bytes).expect("encode");
        for cut in [0, 1, 8, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_workload(&bytes[..cut]).expect_err("truncation must fail");
            assert!(!err.field.is_empty());
            assert!(err.to_string().contains(err.field));
        }
    }

    #[test]
    fn corrupt_flow_tag_is_rejected_not_panicking() {
        let profile = WorkloadProfile::tiny(5);
        let layout = CodeLayout::generate(&profile);
        let trace = Trace::generate_blocks(&layout, 500);
        let mut bytes = Vec::new();
        encode_workload(&layout, &trace, &mut bytes).expect("encode");
        // Flip bytes across the payload; every outcome must be a clean error
        // or an exact roundtrip (a flip in trace padding bits can be silent).
        for pos in (0..bytes.len()).step_by(97) {
            let mut copy = bytes.clone();
            copy[pos] ^= 0xff;
            let _ = decode_workload(&copy);
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let profile = WorkloadProfile::tiny(9);
        let layout = CodeLayout::generate(&profile);
        let trace = Trace::generate_blocks(&layout, 200);
        let mut bytes = Vec::new();
        encode_workload(&layout, &trace, &mut bytes).expect("encode");
        bytes.push(0);
        let err = decode_workload(&bytes).expect_err("trailing bytes must fail");
        assert_eq!(err.field, "payload");
    }

    #[test]
    fn fingerprint_distinguishes_profiles() {
        let a = profile_fingerprint(&WorkloadProfile::tiny(1));
        let b = profile_fingerprint(&WorkloadProfile::tiny(2));
        let c = profile_fingerprint(&WorkloadProfile::tiny(1).with_footprint_bytes(128 * 1024));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, profile_fingerprint(&WorkloadProfile::tiny(1)));
    }
}
