//! Property-based tests of workload generation invariants.
use proptest::prelude::*;
use sim_core::BranchKind;
use workloads::{CodeLayout, Trace, WorkloadProfile};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn layout_generation_invariants_hold_for_any_seed(seed in 0u64..1 << 32) {
        let layout = CodeLayout::generate(&WorkloadProfile::tiny(seed));
        // Blocks are contiguous, sorted and consistent with their functions.
        let mut expected = layout.code_base();
        for b in layout.blocks() {
            prop_assert_eq!(b.block.start, expected);
            expected = b.block.fall_through();
            prop_assert_eq!(b.terminator().kind, b.flow.kind());
        }
        prop_assert_eq!(expected, layout.code_end());
        // Every function's last block is a return or (dispatcher) jump.
        for f in layout.functions() {
            let last = layout.block(workloads::BlockId(f.first_block + f.num_blocks - 1));
            prop_assert!(matches!(last.flow.kind(), BranchKind::Return | BranchKind::DirectJump));
        }
    }

    #[test]
    fn traces_are_connected_paths_within_the_layout(seed in 0u64..1 << 32) {
        let layout = CodeLayout::generate(&WorkloadProfile::tiny(seed));
        let trace = Trace::generate_blocks(&layout, 3_000);
        for pair in trace.blocks().windows(2) {
            prop_assert_eq!(pair[1].start(), pair[0].next_start());
        }
        for d in trace.blocks() {
            prop_assert!(layout.block_at(d.start()).is_some());
        }
    }
}
