//! Table II: the synthetic server workloads and their measured properties.
use workloads::{analysis, CodeLayout, Trace, WorkloadKind};
fn main() {
    println!(
        "{:<11} {:<62} {:>12} {:>12} {:>12}",
        "workload", "description", "footprint KB", "dyn br/ki", "taken WS"
    );
    for kind in WorkloadKind::ALL {
        let profile = kind.profile();
        let layout = CodeLayout::generate(&profile);
        let trace = Trace::generate_blocks(&layout, 120_000);
        let ws = analysis::WorkingSetStats::measure(&trace, layout.geometry());
        let mix = analysis::BranchMix::measure(&trace);
        println!(
            "{:<11} {:<62} {:>12} {:>12.1} {:>12}",
            kind.name(),
            profile.description,
            layout.summary().footprint_bytes / 1024,
            mix.conditional_per_kilo_instruction(),
            ws.taken_branch_working_set
        );
    }
}
