//! Figure 5: FDIP stall-cycle coverage as a function of BTB size and LLC
//! round-trip latency.
use boomerang::Mechanism;
use sim_core::NocModel;
fn main() {
    let workloads = bench::all_workloads();
    let btb_sizes = [2048u64, 4096, 8192, 16 * 1024, 32 * 1024];
    let latencies = [1u64, 10, 20, 30, 40, 50, 60, 70];
    println!("\n=== Figure 5 — FDIP coverage vs BTB size and LLC latency ===");
    print!("{:>11}", "LLC latency");
    for b in btb_sizes {
        print!("{:>10}", format!("BTB{}K", b / 1024));
    }
    println!();
    for lat in latencies {
        print!("{lat:>11}");
        for btb in btb_sizes {
            let cfg = bench::table1_config()
                .with_btb_entries(btb)
                .with_noc(NocModel::Fixed(lat));
            let mut coverage = 0.0;
            for data in &workloads {
                let baseline = data.run(Mechanism::Baseline, &cfg);
                coverage += data.run(Mechanism::Fdip, &cfg).stall_coverage_vs(&baseline)
                    / workloads.len() as f64;
            }
            print!("{:>9.1}%", coverage * 100.0);
        }
        println!();
    }
}
