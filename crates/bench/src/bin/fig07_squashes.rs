//! Figure 7: pipeline squashes per kilo-instruction, split into BTB-miss and
//! direction/target-misprediction causes, for the six mechanisms.
//!
//! Runs the `figure7` campaign preset and prints the per-cell squash
//! breakdown from the aggregated report rows.

use campaign::{presets, run_campaign, EngineOptions};

fn main() {
    let mut spec = presets::find("figure7").expect("embedded preset");
    spec.run = bench::run_length();
    let report = run_campaign(&spec, &EngineOptions::default()).expect("campaign run");

    println!("\n=== Figure 7 — squashes per kilo-instruction (2K-entry BTB) ===");
    println!(
        "{:<11} {:<12} {:>14} {:>12} {:>9}",
        "workload", "mechanism", "mispredict/ki", "btb-miss/ki", "total"
    );
    for row in report.rows.iter().filter(|r| !r.job.implicit_baseline) {
        let r = row.stats.squashes_per_kilo();
        println!(
            "{:<11} {:<12} {:>14.2} {:>12.2} {:>9.2}",
            row.workload_label,
            row.job.mechanism.label(),
            r.misprediction,
            r.btb_miss,
            r.total()
        );
    }
}
