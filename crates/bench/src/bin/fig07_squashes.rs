//! Figure 7: pipeline squashes per kilo-instruction, split into BTB-miss and
//! direction/target-misprediction causes, for the six mechanisms.
use boomerang::Mechanism;
fn main() {
    let cfg = bench::table1_config();
    let workloads = bench::all_workloads();
    println!("\n=== Figure 7 — squashes per kilo-instruction (2K-entry BTB) ===");
    println!("{:<11} {:<12} {:>14} {:>12} {:>9}", "workload", "mechanism", "mispredict/ki", "btb-miss/ki", "total");
    for data in &workloads {
        for mechanism in Mechanism::FIGURE7 {
            let stats = data.run(mechanism, &cfg);
            let r = stats.squashes_per_kilo();
            println!(
                "{:<11} {:<12} {:>14.2} {:>12.2} {:>9.2}",
                data.kind.name(), mechanism.label(), r.misprediction, r.btb_miss, r.total()
            );
        }
    }
}
