//! Figure 2: stall-cycle coverage of FDIP (with different direction
//! predictors) and PIF as a function of the LLC round-trip latency, with a
//! near-ideal 32K-entry BTB.
use boomerang::Mechanism;
use branch_pred::PredictorKind;
use sim_core::NocModel;
fn main() {
    let workloads = bench::all_workloads();
    let latencies = [1u64, 10, 20, 30, 40, 50, 60, 70];
    println!("\n=== Figure 2 — fraction of stall cycles covered (32K-entry BTB) ===");
    println!(
        "{:>11} {:>10} {:>12} {:>12} {:>16} {:>8}",
        "LLC latency", "FDIP TAGE", "FDIP 2-bit", "FDIP gshare", "FDIP Never-Taken", "PIF"
    );
    for lat in latencies {
        let cfg = bench::table1_config()
            .with_btb_entries(32 * 1024)
            .with_noc(NocModel::Fixed(lat));
        let mut cols = [0.0f64; 5];
        for data in &workloads {
            let baseline = data.run(Mechanism::Baseline, &cfg);
            let series = [
                data.run_with_predictor(Mechanism::Fdip, &cfg, PredictorKind::Tage),
                data.run_with_predictor(Mechanism::Fdip, &cfg, PredictorKind::Bimodal),
                data.run_with_predictor(Mechanism::Fdip, &cfg, PredictorKind::Gshare),
                data.run_with_predictor(Mechanism::Fdip, &cfg, PredictorKind::NeverTaken),
                data.run(Mechanism::Pif, &cfg),
            ];
            for (i, s) in series.iter().enumerate() {
                cols[i] += s.stall_coverage_vs(&baseline) / workloads.len() as f64;
            }
        }
        println!(
            "{:>11} {:>9.1}% {:>11.1}% {:>11.1}% {:>15.1}% {:>7.1}%",
            lat,
            cols[0] * 100.0,
            cols[1] * 100.0,
            cols[2] * 100.0,
            cols[3] * 100.0,
            cols[4] * 100.0
        );
    }
}
