//! Figure 8: front-end stall cycles covered over the no-prefetch baseline.
use boomerang::Mechanism;
fn main() {
    let cfg = bench::table1_config();
    let workloads = bench::all_workloads();
    let names: Vec<String> = workloads
        .iter()
        .map(|w| w.kind.name().to_string())
        .collect();
    let mut series = Vec::new();
    for mechanism in Mechanism::FIGURE7 {
        let mut col = Vec::new();
        for data in &workloads {
            let baseline = data.run(Mechanism::Baseline, &cfg);
            col.push(data.run(mechanism, &cfg).stall_coverage_vs(&baseline) * 100.0);
        }
        series.push((mechanism.label().to_string(), col));
    }
    bench::print_table(
        "Figure 8 — front-end stall cycle coverage (%)",
        &names,
        &series,
        "% of baseline stall cycles covered",
    );
}
