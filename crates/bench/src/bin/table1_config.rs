//! Table I: microarchitectural parameters of the simulated core.
fn main() {
    let cfg = bench::table1_config();
    println!("Table I — microarchitectural parameters");
    println!(
        "cores (modelled per-core)        : 16-core CMP, {} GHz, {}-way OoO",
        cfg.clock_ghz, cfg.fetch_width
    );
    println!(
        "ROB / LSQ                        : {} / {}",
        cfg.rob_entries, cfg.lsq_entries
    );
    println!(
        "branch predictor                 : TAGE, {} KB budget",
        cfg.predictor_budget_bytes / 1024
    );
    println!(
        "BTB                              : {}-entry, {}-way",
        cfg.btb_entries, cfg.btb_ways
    );
    println!(
        "L1-I                             : {} KB, {}-way, {}-cycle, {}-entry prefetch buffer",
        cfg.l1i_bytes / 1024,
        cfg.l1i_ways,
        cfg.l1i_latency,
        cfg.l1i_prefetch_buffer_entries
    );
    println!(
        "LLC (shared NUCA)                : {} MB, {}-way, {}",
        cfg.llc_bytes / 1024 / 1024,
        cfg.llc_ways,
        cfg.noc
    );
    println!(
        "memory latency                   : {} ns ({} cycles)",
        cfg.memory_latency_ns,
        cfg.memory_latency()
    );
    println!(
        "FTQ / BTB prefetch buffer        : {} / {} entries",
        cfg.ftq_entries, cfg.btb_prefetch_buffer_entries
    );
}
