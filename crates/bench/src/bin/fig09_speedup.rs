//! Figure 9: speedup over the no-prefetch baseline with a 2K-entry BTB.
use boomerang::Mechanism;
fn main() {
    let cfg = bench::table1_config();
    let workloads = bench::all_workloads();
    let names: Vec<String> = workloads.iter().map(|w| w.kind.name().to_string()).collect();
    let mut series = Vec::new();
    for mechanism in Mechanism::FIGURE7 {
        let mut col = Vec::new();
        for data in &workloads {
            let baseline = data.run(Mechanism::Baseline, &cfg);
            col.push(data.run(mechanism, &cfg).speedup_vs(&baseline));
        }
        series.push((mechanism.label().to_string(), col));
    }
    bench::print_table("Figure 9 — speedup over the no-prefetch baseline", &names, &series, "speedup");
}
