//! Figure 9: speedup over the no-prefetch baseline with a 2K-entry BTB.
//!
//! Runs the `figure9` campaign preset (the full workload x mechanism matrix,
//! sharded across the work-stealing pool) and prints the per-config speedup
//! table. `BOOMERANG_BLOCKS` shortens the run as for every figure binary;
//! `boomerang-sim run --preset figure9` produces the same numbers plus JSON
//! and CSV reports.

use campaign::{presets, run_campaign, to_table, EngineOptions};

fn main() {
    let mut spec = presets::find("figure9").expect("embedded preset");
    spec.run = bench::run_length();
    let report = run_campaign(&spec, &EngineOptions::default()).expect("campaign run");
    print!("{}", to_table(&report));
}
