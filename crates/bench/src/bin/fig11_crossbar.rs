//! Figure 11: speedup at the lower (crossbar, 18-cycle) LLC round-trip
//! latency.
use boomerang::Mechanism;
use sim_core::NocModel;
fn main() {
    let cfg = bench::table1_config().with_noc(NocModel::Crossbar);
    let workloads = bench::all_workloads();
    let names: Vec<String> = workloads.iter().map(|w| w.kind.name().to_string()).collect();
    let mut series = Vec::new();
    for mechanism in Mechanism::FIGURE11 {
        let mut col = Vec::new();
        for data in &workloads {
            let baseline = data.run(Mechanism::Baseline, &cfg);
            col.push(data.run(mechanism, &cfg).speedup_vs(&baseline));
        }
        series.push((mechanism.label().to_string(), col));
    }
    bench::print_table("Figure 11 — speedup at the crossbar LLC latency", &names, &series, "speedup");
}
