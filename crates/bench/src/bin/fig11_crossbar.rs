//! Figure 11: speedup at the lower (crossbar, 18-cycle) LLC round-trip
//! latency.
//!
//! Runs the `figure11` campaign preset and prints the speedup table;
//! `boomerang-sim run --preset figure11` produces the same numbers plus JSON
//! and CSV reports.

use campaign::{presets, run_campaign, to_table, EngineOptions};

fn main() {
    let mut spec = presets::find("figure11").expect("embedded preset");
    spec.run = bench::run_length();
    let report = run_campaign(&spec, &EngineOptions::default()).expect("campaign run");
    print!("{}", to_table(&report));
}
