//! Figure 10: Boomerang's sensitivity to next-N-block prefetching under a BTB
//! miss (None, 1, 2, 4, 8 blocks).
use boomerang::{Mechanism, ThrottlePolicy};
fn main() {
    let cfg = bench::table1_config();
    let workloads = bench::all_workloads();
    let names: Vec<String> = workloads
        .iter()
        .map(|w| w.kind.name().to_string())
        .collect();
    let mut series = Vec::new();
    for policy in ThrottlePolicy::FIGURE10 {
        let mut col = Vec::new();
        for data in &workloads {
            let baseline = data.run(Mechanism::Baseline, &cfg);
            col.push(
                data.run(Mechanism::Boomerang(policy), &cfg)
                    .speedup_vs(&baseline),
            );
        }
        series.push((policy.label(), col));
    }
    bench::print_table(
        "Figure 10 — Boomerang speedup vs next-N-block policy",
        &names,
        &series,
        "speedup",
    );
}
