//! Figure 1: speedup from a perfect L1-I and a perfect BTB over the baseline.
use boomerang::Mechanism;
use sim_core::PerfectComponents;
fn main() {
    let cfg = bench::table1_config();
    let workloads = bench::all_workloads();
    let names: Vec<String> = workloads
        .iter()
        .map(|w| w.kind.name().to_string())
        .collect();
    let mut perfect_l1i = Vec::new();
    let mut perfect_both = Vec::new();
    for data in &workloads {
        let baseline = data.run(Mechanism::Baseline, &cfg);
        let l1i = data.run(
            Mechanism::Baseline,
            &cfg.clone().with_perfect(PerfectComponents::l1i()),
        );
        let both = data.run(
            Mechanism::Baseline,
            &cfg.clone().with_perfect(PerfectComponents::l1i_and_btb()),
        );
        perfect_l1i.push(l1i.speedup_vs(&baseline));
        perfect_both.push(both.speedup_vs(&baseline));
    }
    bench::print_table(
        "Figure 1 — opportunity of perfect control flow delivery",
        &names,
        &[
            ("Perfect L1-I".into(), perfect_l1i),
            ("+ Perfect BTB".into(), perfect_both),
        ],
        "speedup over baseline",
    );
}
