//! §VI-D: storage and complexity comparison.
fn main() {
    println!("{}", boomerang::storage::comparison_table());
}
