//! Figure 3: source of front-end miss (stall) cycles — sequential,
//! conditional and unconditional — for the baseline, next-line, FDIP with
//! 2K-32K BTBs, and PIF.
use boomerang::Mechanism;
fn main() {
    let cfg2k = bench::table1_config();
    let workloads = bench::all_workloads();
    println!("\n=== Figure 3 — stall-cycle breakdown (fraction of the no-prefetch baseline's stall cycles) ===");
    println!(
        "{:<11} {:<16} {:>11} {:>12} {:>14} {:>8}",
        "workload", "config", "sequential", "conditional", "unconditional", "total"
    );
    for data in &workloads {
        let baseline = data.run(Mechanism::Baseline, &cfg2k);
        let base_total = baseline.fetch_stall_cycles.max(1) as f64;
        let mut rows: Vec<(String, frontend::SimStats)> = vec![
            ("Base 2K".into(), baseline),
            ("Next-Line 2K".into(), data.run(Mechanism::NextLine, &cfg2k)),
        ];
        for btb in [2048u64, 8192, 32 * 1024] {
            let cfg = bench::table1_config().with_btb_entries(btb);
            rows.push((
                format!("FDIP {}K", btb / 1024),
                data.run(Mechanism::Fdip, &cfg),
            ));
        }
        rows.push((
            "PIF 32K".into(),
            data.run(
                Mechanism::Pif,
                &bench::table1_config().with_btb_entries(32 * 1024),
            ),
        ));
        for (label, stats) in rows {
            let b = stats.miss_breakdown;
            println!(
                "{:<11} {:<16} {:>10.1}% {:>11.1}% {:>13.1}% {:>7.1}%",
                data.kind.name(),
                label,
                b.sequential as f64 / base_total * 100.0,
                b.conditional as f64 / base_total * 100.0,
                b.unconditional as f64 / base_total * 100.0,
                b.total() as f64 / base_total * 100.0
            );
        }
    }
}
