//! Figure 4: cumulative distribution of taken conditional branch target
//! distance in cache blocks.
use workloads::{analysis::BranchDistanceHistogram, CodeLayout, Trace, WorkloadKind};
fn main() {
    println!("\n=== Figure 4 — taken conditional branch jump distance (cumulative %) ===");
    print!("{:<11}", "workload");
    for d in 0..=8 {
        print!("{:>8}", format!("<={d}"));
    }
    println!();
    for kind in WorkloadKind::ALL {
        let layout = CodeLayout::generate(&kind.profile());
        let trace = Trace::generate_blocks(&layout, 150_000);
        let hist = BranchDistanceHistogram::measure(&trace, layout.geometry(), 8);
        print!("{:<11}", kind.name());
        for d in 0..=8u64 {
            print!("{:>7.1}%", hist.cumulative_within(d) * 100.0);
        }
        println!();
    }
}
