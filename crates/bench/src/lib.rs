//! Shared helpers for the benchmark harness that regenerates the paper's
//! tables and figures.
//!
//! Each figure has a dedicated binary in `src/bin/` (see DESIGN.md for the
//! experiment index); they share the workload-generation and table-printing
//! helpers defined here. Criterion micro-benchmarks of the hot simulator
//! paths live in `benches/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use boomerang::{Mechanism, RunLength, WorkloadData};
use sim_core::MicroarchConfig;
use workloads::WorkloadKind;

/// Run length used by the figure binaries. Override the number of measured
/// blocks with the `BOOMERANG_BLOCKS` environment variable (e.g.
/// `BOOMERANG_BLOCKS=20000` for a quick smoke run).
///
/// An unparseable value is reported on stderr and ignored rather than
/// silently falling back to the paper-length run.
pub fn run_length() -> RunLength {
    match std::env::var("BOOMERANG_BLOCKS") {
        Ok(raw) => match raw.parse::<usize>() {
            Ok(blocks) => RunLength {
                trace_blocks: blocks.max(1_000),
                warmup_blocks: (blocks / 6).max(500),
            },
            Err(err) => {
                eprintln!(
                    "warning: ignoring unparseable BOOMERANG_BLOCKS={raw:?} ({err}); \
                     using the paper-default run length"
                );
                RunLength::paper_default()
            }
        },
        Err(_) => RunLength::paper_default(),
    }
}

/// Generates every paper workload with the harness run length, in parallel on
/// the [`sim_core::pool`] work-stealing pool.
pub fn all_workloads() -> Vec<WorkloadData> {
    let length = run_length();
    sim_core::pool::run_indexed(
        sim_core::pool::default_workers(),
        &WorkloadKind::ALL,
        |_, &kind| WorkloadData::generate(kind, length),
    )
}

/// The Table I configuration.
pub fn table1_config() -> MicroarchConfig {
    MicroarchConfig::hpca17()
}

/// Prints a per-workload table: one row per workload, one column per labelled
/// series, plus an average column computed with the arithmetic mean.
pub fn print_table(title: &str, workloads: &[String], series: &[(String, Vec<f64>)], unit: &str) {
    println!("\n=== {title} ===");
    print!("{:<14}", "workload");
    for (label, _) in series {
        print!("{label:>14}");
    }
    println!();
    for (row, workload) in workloads.iter().enumerate() {
        print!("{workload:<14}");
        for (_, values) in series {
            print!("{:>14.3}", values[row]);
        }
        println!();
    }
    print!("{:<14}", "Avg");
    for (_, values) in series {
        print!("{:>14.3}", sim_core::stats::arithmetic_mean(values));
    }
    println!("  [{unit}]");
}

/// Convenience: the standard mechanism label.
pub fn label(m: Mechanism) -> String {
    m.label().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_length_env_override_floor() {
        // Without the env var the default is the paper length.
        if std::env::var("BOOMERANG_BLOCKS").is_err() {
            assert_eq!(run_length(), RunLength::paper_default());
        }
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "demo",
            &["Nutch".into(), "DB2".into()],
            &[("Boomerang".into(), vec![1.2, 1.3])],
            "speedup",
        );
        assert_eq!(label(Mechanism::Fdip), "FDIP");
    }
}
