//! Benchmarks of workload layout and trace generation.
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use workloads::{CodeLayout, TraceGenerator, WorkloadProfile};

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workloads");
    group.sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(300));
    group.bench_function("layout_generation_tiny", |b| {
        b.iter(|| CodeLayout::generate(&WorkloadProfile::tiny(7)));
    });
    let layout = CodeLayout::generate(&WorkloadProfile::tiny(7));
    group.bench_function("trace_generation_10k_blocks", |b| {
        b.iter(|| {
            let gen = TraceGenerator::new(&layout);
            gen.take(10_000).count()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
