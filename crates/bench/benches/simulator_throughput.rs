//! End-to-end simulator throughput for the main mechanisms of the paper
//! (cycles simulated per wall-clock second drive how large the figure runs
//! can be).
use boomerang::Mechanism;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frontend::Simulator;
use sim_core::MicroarchConfig;
use std::time::Duration;
use workloads::{CodeLayout, Trace, WorkloadProfile};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    let layout = CodeLayout::generate(&WorkloadProfile::tiny(5));
    let trace = Trace::generate_blocks(&layout, 8_000);
    for mechanism in [
        Mechanism::Baseline,
        Mechanism::Fdip,
        Mechanism::Shift,
        Mechanism::Confluence,
        Mechanism::Boomerang(Default::default()),
    ] {
        group.bench_with_input(BenchmarkId::new("8k_blocks", mechanism.label()), &mechanism, |b, &m| {
            b.iter(|| {
                let mut sim = Simulator::new(MicroarchConfig::hpca17(), &layout, trace.blocks(), m.build());
                sim.run()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
