//! Micro-benchmarks of the branch direction predictors (lookup + update).
use branch_pred::{Bimodal, DirectionPredictor, Gshare, Tage};
use criterion::{criterion_group, criterion_main, Criterion};
use sim_core::Addr;
use std::time::Duration;

fn bench_predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictors");
    group.sample_size(20).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    let pcs: Vec<Addr> = (0..256u64).map(|i| Addr::new(0x40_0000 + i * 12)).collect();

    group.bench_function("tage_8kb_predict_update", |b| {
        let mut p = Tage::with_budget(8 * 1024);
        let mut i = 0usize;
        b.iter(|| {
            let pc = pcs[i % pcs.len()];
            let pred = p.predict(pc);
            p.update(pc, pred ^ (i % 7 == 0));
            i += 1;
        });
    });
    group.bench_function("bimodal_predict_update", |b| {
        let mut p = Bimodal::with_budget(8 * 1024);
        let mut i = 0usize;
        b.iter(|| {
            let pc = pcs[i % pcs.len()];
            let pred = p.predict(pc);
            p.update(pc, pred ^ (i % 7 == 0));
            i += 1;
        });
    });
    group.bench_function("gshare_predict_update", |b| {
        let mut p = Gshare::with_budget(8 * 1024);
        let mut i = 0usize;
        b.iter(|| {
            let pc = pcs[i % pcs.len()];
            let pred = p.predict(pc);
            p.update(pc, pred ^ (i % 7 == 0));
            i += 1;
        });
    });
    group.finish();
}

criterion_group!(benches, bench_predictors);
criterion_main!(benches);
