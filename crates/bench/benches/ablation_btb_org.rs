//! Ablation of Boomerang's design choices (DESIGN.md §IV-B/C): the BTB
//! prefetch-buffer size and the next-N throttle policy, measured as end-to-end
//! simulated cycles on a small workload.
use boomerang::{Boomerang, Mechanism, ThrottlePolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frontend::Simulator;
use sim_core::MicroarchConfig;
use std::time::Duration;
use workloads::{CodeLayout, Trace, WorkloadProfile};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    let layout = CodeLayout::generate(&WorkloadProfile::tiny(9));
    let trace = Trace::generate_blocks(&layout, 8_000);

    for policy in ThrottlePolicy::FIGURE10 {
        group.bench_with_input(
            BenchmarkId::new("throttle", policy.label()),
            &policy,
            |b, &p| {
                b.iter(|| {
                    let mut sim = Simulator::new(
                        MicroarchConfig::hpca17(),
                        &layout,
                        trace.blocks(),
                        Box::new(Boomerang::with_throttle(p)),
                    );
                    sim.run()
                });
            },
        );
    }
    for buffer_entries in [8usize, 32, 128] {
        group.bench_with_input(
            BenchmarkId::new("btb_prefetch_buffer", buffer_entries),
            &buffer_entries,
            |b, &n| {
                let mut cfg = MicroarchConfig::hpca17();
                cfg.btb_prefetch_buffer_entries = n;
                b.iter(|| {
                    let mut sim = Simulator::new(
                        cfg.clone(),
                        &layout,
                        trace.blocks(),
                        Mechanism::Boomerang(Default::default()).build(),
                    );
                    sim.run()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
