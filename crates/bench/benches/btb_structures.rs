//! Micro-benchmarks of the BTB organisations and the BTB prefetch buffer.
use btb::{BasicBlockBtb, BtbEntry, BtbPrefetchBuffer, InstructionBtb};
use criterion::{criterion_group, criterion_main, Criterion};
use sim_core::{Addr, BranchInfo, BranchKind};
use std::time::Duration;

fn entry(i: u64) -> BtbEntry {
    let start = Addr::new(0x40_0000 + i * 24);
    let term = BranchInfo::direct(start.add_instructions(3), BranchKind::Conditional, Addr::new(0x50_0000));
    BtbEntry::from_block(start, 4, term)
}

fn bench_btb(c: &mut Criterion) {
    let mut group = c.benchmark_group("btb");
    group.sample_size(20).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));

    group.bench_function("bb_btb_2k_lookup_insert", |b| {
        let mut btb = BasicBlockBtb::new(2048, 4);
        let mut i = 0u64;
        b.iter(|| {
            let e = entry(i % 4096);
            if !btb.lookup(e.block_start).is_hit() {
                btb.insert(e);
            }
            i += 1;
        });
    });
    group.bench_function("instruction_btb_2k_lookup_insert", |b| {
        let mut btb = InstructionBtb::new(2048, 4);
        let mut i = 0u64;
        b.iter(|| {
            let e = entry(i % 4096);
            if !btb.lookup(e.branch_pc()).is_hit() {
                btb.insert(e.branch_pc(), e);
            }
            i += 1;
        });
    });
    group.bench_function("btb_prefetch_buffer_insert_take", |b| {
        let mut buf = BtbPrefetchBuffer::new(32);
        let mut i = 0u64;
        b.iter(|| {
            buf.insert(entry(i % 64));
            let _ = buf.take(entry((i + 31) % 64).block_start);
            i += 1;
        });
    });
    group.finish();
}

criterion_group!(benches, bench_btb);
criterion_main!(benches);
