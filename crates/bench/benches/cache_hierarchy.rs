//! Micro-benchmarks of the instruction memory hierarchy.
use cache::InstructionHierarchy;
use criterion::{criterion_group, criterion_main, Criterion};
use sim_core::{CacheLine, MicroarchConfig};
use std::time::Duration;

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_hierarchy");
    group.sample_size(20).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(300));
    group.bench_function("demand_fetch_stream", |b| {
        let mut h = InstructionHierarchy::new(&MicroarchConfig::hpca17());
        let mut now = 0u64;
        b.iter(|| {
            // A strided stream mixing hits and misses.
            let line = CacheLine((now * 7) % 4096);
            let outcome = h.demand_fetch(line, now);
            now += outcome.latency;
        });
    });
    group.bench_function("prefetch_probe_stream", |b| {
        let mut h = InstructionHierarchy::new(&MicroarchConfig::hpca17());
        let mut now = 0u64;
        b.iter(|| {
            let line = CacheLine((now * 13) % 8192);
            h.prefetch_probe(line, now);
            now += 1;
        });
    });
    group.finish();
}

criterion_group!(benches, bench_hierarchy);
criterion_main!(benches);
