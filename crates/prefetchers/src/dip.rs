//! Discontinuity instruction prefetcher (DIP, Spracklen et al.).
//!
//! DIP records, in a *discontinuity prediction table*, pairs of cache lines
//! (`from`, `to`) where a demand miss on `to` followed a fetch from a
//! non-sequential `from` line. On later demand fetches of `from`, the
//! recorded discontinuity target is prefetched. Per §V-A the paper pairs an
//! 8K-entry table with a next-2-line prefetcher; this implementation does the
//! same.

use frontend::{ControlFlowMechanism, MechContext};
use sim_core::{CacheLine, FxHashMap};

/// Discontinuity prefetcher + next-N-line.
#[derive(Clone, Debug)]
pub struct Dip {
    table: FxHashMap<CacheLine, CacheLine>,
    insertion_order: Vec<CacheLine>,
    capacity: usize,
    next_line_degree: u64,
    last_line: Option<CacheLine>,
}

impl Dip {
    /// Creates a DIP with a `capacity`-entry discontinuity table and a
    /// next-`next_line_degree`-line sequential prefetcher.
    pub fn new(capacity: usize, next_line_degree: u64) -> Self {
        assert!(
            capacity > 0,
            "the discontinuity table needs at least one entry"
        );
        Dip {
            table: FxHashMap::default(),
            insertion_order: Vec::with_capacity(capacity),
            capacity,
            next_line_degree,
            last_line: None,
        }
    }

    /// Number of discontinuities currently recorded.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    fn record(&mut self, from: CacheLine, to: CacheLine) {
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.table.entry(from) {
            e.insert(to);
            return;
        }
        if self.table.len() >= self.capacity {
            // FIFO eviction of the oldest recorded discontinuity.
            let victim = self.insertion_order.remove(0);
            self.table.remove(&victim);
        }
        self.table.insert(from, to);
        self.insertion_order.push(from);
    }
}

// Line-transition contract audit: DIP observes, trains on, and prefetches
// from line-transition events alone (its discontinuity table is keyed by
// line pairs); it keeps no queued work, so the default `next_tick_event` of
// `None` is exact.
impl ControlFlowMechanism for Dip {
    fn name(&self) -> &'static str {
        "DIP"
    }

    fn on_demand_fetch(
        &mut self,
        line: CacheLine,
        previous_line: Option<CacheLine>,
        missed: bool,
        ctx: &mut MechContext<'_>,
    ) {
        // Sequential component.
        for i in 1..=self.next_line_degree {
            ctx.prefetch_line(line.step(i));
        }
        // Discontinuity component: prefetch the recorded target of this line.
        if let Some(&target) = self.table.get(&line) {
            ctx.prefetch_line(target);
            ctx.prefetch_line(target.next());
        }
        // Train on misses that follow a non-sequential transition.
        if missed {
            if let Some(prev) = previous_line {
                let distance = line.distance(prev);
                if distance > self.next_line_degree {
                    self.record(prev, line);
                }
            }
        }
        self.last_line = previous_line;
    }

    fn storage_overhead_bits(&self) -> u64 {
        // Each entry: ~40-bit line tag + ~40-bit target line.
        self.capacity as u64 * 80
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::Simulator;
    use sim_core::MicroarchConfig;
    use workloads::{CodeLayout, Trace, WorkloadProfile};

    #[test]
    fn table_records_and_evicts_fifo() {
        let mut dip = Dip::new(2, 2);
        dip.record(CacheLine(1), CacheLine(100));
        dip.record(CacheLine(2), CacheLine(200));
        assert_eq!(dip.table_len(), 2);
        dip.record(CacheLine(3), CacheLine(300));
        assert_eq!(dip.table_len(), 2);
        assert!(
            !dip.table.contains_key(&CacheLine(1)),
            "oldest entry evicted"
        );
        // Re-recording an existing key updates in place without eviction.
        dip.record(CacheLine(2), CacheLine(999));
        assert_eq!(dip.table[&CacheLine(2)], CacheLine(999));
        assert_eq!(dip.table_len(), 2);
    }

    #[test]
    fn storage_matches_an_8k_entry_table() {
        let dip = Dip::new(8 * 1024, 2);
        let bytes = dip.storage_overhead_bits() / 8;
        assert!(bytes > 60 * 1024 && bytes < 100 * 1024, "{bytes} bytes");
        assert_eq!(dip.name(), "DIP");
    }

    #[test]
    fn dip_beats_the_no_prefetch_baseline() {
        let layout = CodeLayout::generate(&WorkloadProfile::tiny(29));
        let trace = Trace::generate_blocks(&layout, 15_000);
        let baseline = Simulator::new(
            MicroarchConfig::hpca17(),
            &layout,
            trace.blocks(),
            Box::new(frontend::NoPrefetch::new()),
        )
        .run_with_warmup(1_000);
        let dip = Simulator::new(
            MicroarchConfig::hpca17(),
            &layout,
            trace.blocks(),
            Box::new(Dip::new(8 * 1024, 2)),
        )
        .run_with_warmup(1_000);
        assert!(dip.fetch_stall_cycles < baseline.fetch_stall_cycles);
        assert!(dip.speedup_vs(&baseline) >= 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = Dip::new(0, 2);
    }
}
