//! Fetch-directed instruction prefetching (FDIP, Reinman/Calder/Austin).
//!
//! FDIP is the branch-predictor-directed prefetcher Boomerang builds on
//! (§IV-A): the prefetch engine scans newly created FTQ entries, computes the
//! cache lines each basic block spans, and issues prefetch probes for them —
//! running arbitrarily far ahead of the fetch engine because probes need no
//! response. Under a BTB miss the branch prediction unit keeps enqueueing
//! sequential addresses (the simulator charges that time), so FDIP loses
//! coverage only on the unconditional discontinuities a small BTB fails to
//! capture.

use frontend::{ControlFlowMechanism, FtqEntry, MechContext};
use sim_core::CacheLine;
use std::collections::VecDeque;

/// The FDIP prefetch engine.
#[derive(Clone, Debug)]
pub struct Fdip {
    pending: VecDeque<CacheLine>,
    issued: u64,
}

impl Fdip {
    /// Creates the prefetch engine.
    pub fn new() -> Self {
        Fdip {
            pending: VecDeque::new(),
            issued: 0,
        }
    }

    /// Prefetch probes issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Lines waiting to be probed.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

impl Default for Fdip {
    fn default() -> Self {
        Fdip::new()
    }
}

// Line-transition contract audit: FDIP's only inputs are FTQ-push events
// (scanned at cache-block granularity into the pending queue) and squashes;
// probes issue from `tick` with `next_tick_event` exact (`Some(0)` iff work
// is queued). It implements no `on_demand_fetch` and observes nothing
// between line transitions.
impl ControlFlowMechanism for Fdip {
    fn name(&self) -> &'static str {
        "FDIP"
    }

    fn is_fetch_directed(&self) -> bool {
        true
    }

    fn on_ftq_push(&mut self, entry: &FtqEntry, ctx: &mut MechContext<'_>) {
        // The prefetch engine works at cache-block granularity: one probe per
        // distinct line the basic block spans (§IV-A). Timestamp-invariant
        // per the `on_ftq_push` contract: the scan only *enqueues* lines —
        // `ctx.now` is never read, and the probes issue from `tick` at their
        // own cycles.
        let geometry = ctx.layout.geometry();
        for line in geometry.lines_spanned(entry.start, entry.instructions) {
            if self.pending.back() != Some(&line) {
                self.pending.push_back(line);
            }
        }
    }

    fn tick(&mut self, ctx: &mut MechContext<'_>) {
        for _ in 0..ctx.config.prefetch_probes_per_cycle {
            let Some(line) = self.pending.pop_front() else {
                break;
            };
            ctx.prefetch_line(line);
            self.issued += 1;
        }
    }

    fn next_tick_event(&self) -> Option<u64> {
        // Queued probes issue on the very next tick; an empty queue stays
        // empty until the next FTQ push.
        (!self.pending.is_empty()).then_some(0)
    }

    fn on_squash(&mut self, _cause: frontend::SquashCause, _ctx: &mut MechContext<'_>) {
        // Prefetch probes for the squashed path are abandoned.
        self.pending.clear();
    }

    fn storage_overhead_bits(&self) -> u64 {
        // FDIP's only cost beyond the baseline is the deeper FTQ, charged in
        // the Boomerang/FDIP storage model (§VI-D); the pending-probe queue
        // models the FTQ scan pointer, not a real structure.
        btb::storage::ftq_bytes(32) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::{NoPrefetch, Simulator};
    use sim_core::MicroarchConfig;
    use workloads::{CodeLayout, Trace, WorkloadProfile};

    fn run(mechanism: Box<dyn ControlFlowMechanism>, btb_entries: u64) -> frontend::SimStats {
        let layout = CodeLayout::generate(&WorkloadProfile::tiny(41));
        let trace = Trace::generate_blocks(&layout, 20_000);
        Simulator::new(
            MicroarchConfig::hpca17().with_btb_entries(btb_entries),
            &layout,
            trace.blocks(),
            mechanism,
        )
        .run_with_warmup(1_000)
    }

    #[test]
    fn fdip_covers_most_stall_cycles() {
        let baseline = run(Box::new(NoPrefetch::new()), 2048);
        let fdip = run(Box::new(Fdip::new()), 2048);
        let coverage = fdip.stall_coverage_vs(&baseline);
        assert!(
            coverage > 0.4,
            "FDIP should cover a large fraction of stalls, got {coverage:.2}"
        );
        assert!(fdip.speedup_vs(&baseline) > 1.0);
    }

    #[test]
    fn fdip_with_a_large_btb_squashes_less_and_runs_faster() {
        let baseline = run(Box::new(NoPrefetch::new()), 2048);
        let small = run(Box::new(Fdip::new()), 256);
        let large = run(Box::new(Fdip::new()), 32 * 1024);
        assert!(large.squashes.btb_miss < small.squashes.btb_miss);
        assert!(
            large.cycles <= small.cycles,
            "a larger BTB must not slow FDIP down ({} vs {})",
            large.cycles,
            small.cycles
        );
        // Coverage stays in the same ballpark; the paper notes it can even
        // dip slightly because fewer squashes mean fewer wrong-path
        // prefetches that happen to land on the correct path (§VI-B).
        let delta = large.stall_coverage_vs(&baseline) - small.stall_coverage_vs(&baseline);
        assert!(
            delta > -0.25,
            "coverage collapsed with a larger BTB: {delta}"
        );
    }

    #[test]
    fn fdip_does_not_fix_btb_miss_squashes() {
        let baseline = run(Box::new(NoPrefetch::new()), 2048);
        let fdip = run(Box::new(Fdip::new()), 2048);
        // FDIP only prefetches instructions; BTB-miss squashes remain within
        // noise of the baseline.
        assert!(fdip.squashes.btb_miss > 0);
        let ratio = fdip.squashes.btb_miss as f64 / baseline.squashes.btb_miss.max(1) as f64;
        assert!(
            ratio > 0.5,
            "FDIP unexpectedly removed BTB-miss squashes ({ratio})"
        );
    }

    #[test]
    fn prefetch_engine_bookkeeping() {
        let fdip = Fdip::new();
        assert_eq!(fdip.pending(), 0);
        assert_eq!(fdip.issued(), 0);
        assert!(fdip.is_fetch_directed());
        assert!(fdip.storage_overhead_bits() > 0);
        assert_eq!(fdip.name(), "FDIP");
        let _ = Fdip::default();
    }
}
