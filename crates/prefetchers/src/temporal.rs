//! Temporal-streaming instruction prefetchers: PIF and SHIFT.
//!
//! Both record the sequence of cache lines the correct-path (retire) stream
//! touches and, on a demand miss, look the missing line up in that history
//! and replay the lines that followed it last time as prefetches.
//!
//! * **PIF** (Proactive Instruction Fetch) keeps the history *private* to the
//!   core: lookups are immediate, but the metadata (the paper quotes >200 KB
//!   per core) must be stored next to the core.
//! * **SHIFT** (Shared History Instruction Fetch) virtualises one shared
//!   history into the LLC: per-core storage drops, but every stream lookup
//!   first pays an LLC round trip before prefetches can issue, and the
//!   history competes with data for LLC capacity.
//!
//! The implementation uses a circular history buffer plus an index table
//! mapping a line to its most recent position in the history — the same
//! structure the papers describe, sized to the paper's quoted configurations
//! (32K-entry history, 8K-entry index).

use frontend::{ControlFlowMechanism, MechContext};
use sim_core::{CacheLine, DynamicBlock, FxHashMap, Latency, OrderQueue};
use std::collections::VecDeque;

/// Shared temporal-streaming machinery used by both PIF and SHIFT.
#[derive(Clone, Debug)]
pub struct TemporalStreamer {
    /// Circular history of committed instruction lines.
    history: VecDeque<CacheLine>,
    history_capacity: usize,
    /// Most recent position (monotonic sequence number) of each line.
    index: FxHashMap<CacheLine, u64>,
    /// Index insertion order as `(line, seq)` slots; a slot tombstones once
    /// the line is re-recorded with a newer seq. Replaces the former
    /// full-index `min_by_key` scan (O(index) per eviction) with an
    /// amortised O(1) pop of the oldest live slot — the victim is identical,
    /// because the oldest live slot is exactly the index's minimum seq.
    index_order: OrderQueue<CacheLine>,
    index_capacity: usize,
    /// Sequence number of the oldest element still in `history`.
    base_seq: u64,
    /// Lines waiting to be issued as prefetches (with their earliest issue
    /// cycle, to model SHIFT's LLC metadata access latency).
    pending: VecDeque<(u64, CacheLine)>,
    /// How many successor lines to replay per stream lookup.
    stream_depth: usize,
    /// Extra latency before a looked-up stream starts issuing (0 for PIF,
    /// an LLC round trip for SHIFT).
    lookup_latency: Latency,
    lookups: u64,
    replays: u64,
}

impl TemporalStreamer {
    /// Creates a streamer with the given history/index capacities.
    pub fn new(
        history_capacity: usize,
        index_capacity: usize,
        stream_depth: usize,
        lookup_latency: Latency,
    ) -> Self {
        assert!(history_capacity > 0 && index_capacity > 0 && stream_depth > 0);
        TemporalStreamer {
            history: VecDeque::with_capacity(history_capacity),
            history_capacity,
            index: FxHashMap::default(),
            index_order: OrderQueue::new(2 * index_capacity),
            index_capacity,
            base_seq: 0,
            pending: VecDeque::new(),
            stream_depth,
            lookup_latency,
            lookups: 0,
            replays: 0,
        }
    }

    /// Number of history entries currently held.
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Stream lookups performed.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lines replayed as prefetches.
    pub fn replays(&self) -> u64 {
        self.replays
    }

    /// Records a committed line in the history (consecutive duplicates are
    /// collapsed, as in the papers' spatial-region compaction).
    pub fn record(&mut self, line: CacheLine) {
        if self.history.back() == Some(&line) {
            return;
        }
        if self.history.len() == self.history_capacity {
            self.history.pop_front();
            self.base_seq += 1;
        }
        self.history.push_back(line);
        let seq = self.base_seq + self.history.len() as u64 - 1;
        if self.index.len() >= self.index_capacity && !self.index.contains_key(&line) {
            // Evict the oldest-seq entry to respect the index budget.
            let index = &self.index;
            if let Some(victim) = self
                .index_order
                .pop_oldest_live(|l, s| index.get(l) == Some(&s))
            {
                self.index.remove(&victim);
            }
        }
        let index = &self.index;
        self.index_order
            .maybe_compact(|l, s| index.get(l) == Some(&s));
        self.index.insert(line, seq);
        self.index_order.push(line, seq);
    }

    /// Looks up `line` and queues the lines that followed it in the recorded
    /// history as prefetch candidates, available `lookup_latency` cycles from
    /// `now`.
    pub fn stream_from(&mut self, line: CacheLine, now: u64) {
        self.lookups += 1;
        let Some(&seq) = self.index.get(&line) else {
            return;
        };
        if seq < self.base_seq {
            return; // The indexed position has already left the history.
        }
        let pos = (seq - self.base_seq) as usize;
        let ready = now + self.lookup_latency;
        for offset in 1..=self.stream_depth {
            if let Some(&next) = self.history.get(pos + offset) {
                self.pending.push_back((ready, next));
                self.replays += 1;
            }
        }
    }

    /// Issues up to `budget` pending prefetches that are ready at `now`.
    pub fn issue_pending(&mut self, budget: u64, ctx: &mut MechContext<'_>) {
        for _ in 0..budget {
            if self.issue_one(ctx).is_none() {
                break;
            }
        }
    }

    /// The cycle at which the oldest pending prefetch becomes ready, or
    /// `None` if nothing is pending. Issue order is FIFO, so nothing issues
    /// before the front entry's ready cycle.
    pub fn next_pending_ready(&self) -> Option<u64> {
        self.pending.front().map(|&(ready, _)| ready)
    }

    /// Issues at most one ready pending prefetch and returns the line it
    /// probed, or `None` if nothing was ready.
    pub fn issue_one(&mut self, ctx: &mut MechContext<'_>) -> Option<CacheLine> {
        match self.pending.front() {
            Some(&(ready, line)) if ready <= ctx.now => {
                ctx.prefetch_line(line);
                self.pending.pop_front();
                Some(line)
            }
            _ => None,
        }
    }

    /// Storage of the history + index metadata in bits (each history entry is
    /// a ~40-bit line address; each index entry a ~40-bit tag plus a pointer).
    pub fn storage_bits(&self) -> u64 {
        let history_bits = self.history_capacity as u64 * 40;
        let index_bits = self.index_capacity as u64 * (40 + 16);
        history_bits + index_bits
    }
}

/// Proactive Instruction Fetch: private temporal streaming (Ferdman et al.).
#[derive(Clone, Debug)]
pub struct Pif {
    streamer: TemporalStreamer,
}

impl Pif {
    /// Creates PIF with the paper's 32K-entry history and 8K-entry index.
    pub fn new() -> Self {
        Pif {
            streamer: TemporalStreamer::new(32 * 1024, 8 * 1024, 12, 0),
        }
    }

    /// Access to the underlying streamer (for tests and diagnostics).
    pub fn streamer(&self) -> &TemporalStreamer {
        &self.streamer
    }
}

impl Default for Pif {
    fn default() -> Self {
        Pif::new()
    }
}

// Line-transition contract audit (PIF, and SHIFT below identically): the
// retire-stream history trains on commit events at line granularity
// (`lines_spanned`), replay starts from line-transition *misses*, and queued
// replay probes issue from `tick` under an exact `next_pending_ready` bound
// — nothing observes intra-line fetch progress.
impl ControlFlowMechanism for Pif {
    fn name(&self) -> &'static str {
        "PIF"
    }

    fn on_commit(&mut self, block: &DynamicBlock, ctx: &mut MechContext<'_>) {
        let geometry = ctx.layout.geometry();
        for line in geometry.lines_spanned(block.start(), block.instructions()) {
            self.streamer.record(line);
        }
    }

    fn on_demand_fetch(
        &mut self,
        line: CacheLine,
        _previous_line: Option<CacheLine>,
        missed: bool,
        ctx: &mut MechContext<'_>,
    ) {
        if missed {
            self.streamer.stream_from(line, ctx.now);
        }
    }

    fn tick(&mut self, ctx: &mut MechContext<'_>) {
        let budget = ctx.config.prefetch_probes_per_cycle;
        self.streamer.issue_pending(budget, ctx);
    }

    fn next_tick_event(&self) -> Option<u64> {
        self.streamer.next_pending_ready()
    }

    fn storage_overhead_bits(&self) -> u64 {
        self.streamer.storage_bits()
    }
}

/// Shared History Instruction Fetch: LLC-virtualised temporal streaming
/// (Kaynak et al.).
#[derive(Clone, Debug)]
pub struct Shift {
    streamer: TemporalStreamer,
    configured_lookup_latency: Latency,
}

impl Shift {
    /// Creates SHIFT with the paper's 32K-entry history and 8K-entry index,
    /// with stream lookups delayed by an LLC round trip (the history lives in
    /// the LLC).
    pub fn new() -> Self {
        let llc_latency = sim_core::MicroarchConfig::hpca17().llc_round_trip();
        Shift {
            streamer: TemporalStreamer::new(32 * 1024, 8 * 1024, 12, llc_latency),
            configured_lookup_latency: llc_latency,
        }
    }

    /// The extra latency each stream lookup pays to reach the LLC-resident
    /// metadata.
    pub fn lookup_latency(&self) -> Latency {
        self.configured_lookup_latency
    }

    /// Access to the underlying streamer (for tests and diagnostics).
    pub fn streamer(&self) -> &TemporalStreamer {
        &self.streamer
    }
}

impl Default for Shift {
    fn default() -> Self {
        Shift::new()
    }
}

impl ControlFlowMechanism for Shift {
    fn name(&self) -> &'static str {
        "SHIFT"
    }

    fn on_commit(&mut self, block: &DynamicBlock, ctx: &mut MechContext<'_>) {
        let geometry = ctx.layout.geometry();
        for line in geometry.lines_spanned(block.start(), block.instructions()) {
            self.streamer.record(line);
        }
    }

    fn on_demand_fetch(
        &mut self,
        line: CacheLine,
        _previous_line: Option<CacheLine>,
        missed: bool,
        ctx: &mut MechContext<'_>,
    ) {
        if missed {
            self.streamer.stream_from(line, ctx.now);
        }
    }

    fn tick(&mut self, ctx: &mut MechContext<'_>) {
        let budget = ctx.config.prefetch_probes_per_cycle;
        self.streamer.issue_pending(budget, ctx);
    }

    fn next_tick_event(&self) -> Option<u64> {
        self.streamer.next_pending_ready()
    }

    fn storage_overhead_bits(&self) -> u64 {
        // The history is virtualised into the LLC; the dedicated cost the
        // paper quotes is the LLC tag-array extension for the index table
        // (~240 KB for an 8 MB LLC).
        240 * 1024 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::{NoPrefetch, Simulator};
    use sim_core::MicroarchConfig;
    use workloads::{CodeLayout, Trace, WorkloadProfile};

    #[test]
    fn streamer_records_and_replays() {
        let mut s = TemporalStreamer::new(16, 16, 3, 0);
        for i in 0..8u64 {
            s.record(CacheLine(i));
        }
        assert_eq!(s.history_len(), 8);
        // Duplicate consecutive lines are collapsed.
        s.record(CacheLine(7));
        assert_eq!(s.history_len(), 8);
        s.stream_from(CacheLine(3), 0);
        assert_eq!(s.lookups(), 1);
        assert_eq!(s.replays(), 3);
        // Unknown lines replay nothing.
        s.stream_from(CacheLine(999), 0);
        assert_eq!(s.replays(), 3);
    }

    #[test]
    fn streamer_history_wraps_and_index_stays_valid() {
        let mut s = TemporalStreamer::new(4, 4, 2, 0);
        for i in 0..20u64 {
            s.record(CacheLine(i));
        }
        assert_eq!(s.history_len(), 4);
        // A line that has aged out of the history does not replay.
        s.stream_from(CacheLine(0), 0);
        assert_eq!(s.replays(), 0);
        // A recent line does.
        s.stream_from(CacheLine(17), 0);
        assert!(s.replays() > 0);
    }

    #[test]
    fn pif_and_shift_cover_stall_cycles() {
        // Temporal streamers can only cover *recurring* misses: the active
        // code footprint must comfortably exceed the 32 KB L1-I so that lines
        // recorded in the history are evicted and miss again after warmup.
        // The stock tiny profile (48 KB) barely overflows the L1-I — its
        // post-warmup misses are almost entirely compulsory, which PIF/SHIFT
        // cannot replay — so this test widens the footprint to 4x the L1-I
        // and runs long enough for the working set to wrap several times.
        let profile = WorkloadProfile::tiny(53).with_footprint_bytes(128 * 1024);
        let layout = CodeLayout::generate(&profile);
        let trace = Trace::generate_blocks(&layout, 40_000);
        let cfg = MicroarchConfig::hpca17();
        let baseline = Simulator::new(
            cfg.clone(),
            &layout,
            trace.blocks(),
            Box::new(NoPrefetch::new()),
        )
        .run_with_warmup(8_000);
        let pif = Simulator::new(cfg.clone(), &layout, trace.blocks(), Box::new(Pif::new()))
            .run_with_warmup(8_000);
        let shift = Simulator::new(cfg, &layout, trace.blocks(), Box::new(Shift::new()))
            .run_with_warmup(8_000);
        assert!(
            pif.fetch_stall_cycles < baseline.fetch_stall_cycles,
            "PIF must cover stalls ({} vs {})",
            pif.fetch_stall_cycles,
            baseline.fetch_stall_cycles
        );
        assert!(shift.fetch_stall_cycles < baseline.fetch_stall_cycles);
        // SHIFT's LLC-resident metadata makes it no better than PIF.
        assert!(shift.fetch_stall_cycles >= pif.fetch_stall_cycles * 9 / 10);
    }

    #[test]
    fn storage_costs_match_the_papers_quotes() {
        let pif = Pif::new();
        let pif_kb = pif.storage_overhead_bits() / 8 / 1024;
        assert!((180..=260).contains(&pif_kb), "PIF metadata {pif_kb} KB");
        let shift = Shift::new();
        assert_eq!(shift.storage_overhead_bits() / 8 / 1024, 240);
        assert!(shift.lookup_latency() > 0);
        assert_eq!(pif.name(), "PIF");
        assert_eq!(shift.name(), "SHIFT");
    }
}
