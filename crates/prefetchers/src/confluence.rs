//! Confluence: unified instruction supply (Kaynak et al., MICRO 2015).
//!
//! Confluence is the state-of-the-art Boomerang compares against: it reuses
//! SHIFT's LLC-virtualised temporal-streaming instruction prefetcher and, as
//! prefetched cache blocks arrive, predecodes them and inserts BTB entries
//! for the branches they contain — so a single prefetcher feeds both the
//! L1-I and the BTB. Its weakness (§VI-A) is that the BTB is only as good as
//! the prefetcher: when a prefetch is wrong or late, the corresponding
//! branches are absent from the BTB and the front end runs off a cliff
//! without even knowing it missed.

use crate::temporal::TemporalStreamer;
use frontend::{ControlFlowMechanism, MechContext};
use sim_core::{CacheLine, DynamicBlock, Latency};

/// Confluence: SHIFT + predecode-driven BTB prefill.
#[derive(Clone, Debug)]
pub struct Confluence {
    streamer: TemporalStreamer,
    btb_prefills: u64,
}

impl Confluence {
    /// Creates Confluence with SHIFT's prefetcher configuration.
    pub fn new() -> Self {
        let llc_latency: Latency = sim_core::MicroarchConfig::hpca17().llc_round_trip();
        Confluence {
            streamer: TemporalStreamer::new(32 * 1024, 8 * 1024, 12, llc_latency),
            btb_prefills: 0,
        }
    }

    /// BTB entries prefilled from predecoded blocks so far.
    pub fn btb_prefills(&self) -> u64 {
        self.btb_prefills
    }

    /// Predecodes `line` and inserts BTB entries for its direct branches.
    fn prefill_btb(&mut self, line: CacheLine, ctx: &mut MechContext<'_>) {
        for entry in frontend::predecode_line_iter(ctx.layout, line) {
            // Only direct branches carry their target in the cache block;
            // indirect branches and returns cannot be prefilled (§II-C).
            if entry.target.is_some() {
                ctx.btb.insert(entry);
                self.btb_prefills += 1;
            }
        }
    }
}

impl Default for Confluence {
    fn default() -> Self {
        Confluence::new()
    }
}

// Line-transition contract audit: Confluence is SHIFT's streamer (commit
// training, miss-triggered replay, tick-issued probes under an exact
// `next_pending_ready` bound) plus predecode-driven BTB prefill — and the
// prefill runs exactly at line-granular events: each line-transition event
// and each line its tick prefetches. No intra-line observation anywhere.
impl ControlFlowMechanism for Confluence {
    fn name(&self) -> &'static str {
        "Confluence"
    }

    fn on_commit(&mut self, block: &DynamicBlock, ctx: &mut MechContext<'_>) {
        let geometry = ctx.layout.geometry();
        for line in geometry.lines_spanned(block.start(), block.instructions()) {
            self.streamer.record(line);
        }
    }

    fn on_demand_fetch(
        &mut self,
        line: CacheLine,
        _previous_line: Option<CacheLine>,
        missed: bool,
        ctx: &mut MechContext<'_>,
    ) {
        // Every block arriving at the L1-I is predecoded into the BTB,
        // whether it came from a prefetch or a demand fill.
        self.prefill_btb(line, ctx);
        if missed {
            self.streamer.stream_from(line, ctx.now);
        }
    }

    fn tick(&mut self, ctx: &mut MechContext<'_>) {
        let budget = ctx.config.prefetch_probes_per_cycle;
        // Issue the pending stream prefetches, predecoding each prefetched
        // block into the BTB as it goes out.
        for _ in 0..budget {
            match self.streamer.issue_one(ctx) {
                Some(line) => self.prefill_btb(line, ctx),
                None => break,
            }
        }
    }

    fn next_tick_event(&self) -> Option<u64> {
        self.streamer.next_pending_ready()
    }

    fn storage_overhead_bits(&self) -> u64 {
        // Same dedicated cost as SHIFT (the LLC tag-array extension for the
        // index table); the BTB prefill logic itself adds no metadata.
        240 * 1024 * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::{NoPrefetch, Simulator};
    use sim_core::MicroarchConfig;
    use workloads::{CodeLayout, Trace, WorkloadProfile};

    fn run(mechanism: Box<dyn ControlFlowMechanism>) -> frontend::SimStats {
        let layout = CodeLayout::generate(&WorkloadProfile::tiny(61));
        let trace = Trace::generate_blocks(&layout, 25_000);
        Simulator::new(
            MicroarchConfig::hpca17(),
            &layout,
            trace.blocks(),
            mechanism,
        )
        .run_with_warmup(2_000)
    }

    #[test]
    fn confluence_reduces_btb_miss_squashes_vs_shift() {
        let shift = run(Box::new(crate::Shift::new()));
        let confluence = run(Box::new(Confluence::new()));
        assert!(
            confluence.squashes.btb_miss < shift.squashes.btb_miss,
            "Confluence ({}) must prefill BTB misses that SHIFT ({}) suffers",
            confluence.squashes.btb_miss,
            shift.squashes.btb_miss
        );
    }

    #[test]
    fn confluence_outperforms_the_baseline() {
        let baseline = run(Box::new(NoPrefetch::new()));
        let confluence = run(Box::new(Confluence::new()));
        assert!(confluence.fetch_stall_cycles < baseline.fetch_stall_cycles);
        assert!(confluence.speedup_vs(&baseline) > 1.0);
    }

    #[test]
    fn bookkeeping() {
        let c = Confluence::new();
        assert_eq!(c.name(), "Confluence");
        assert_eq!(c.btb_prefills(), 0);
        assert_eq!(c.storage_overhead_bits(), 240 * 1024 * 8);
        let _ = Confluence::default();
    }
}
