//! Next-N-line prefetcher.
//!
//! On every demand fetch of line `L`, prefetch lines `L+1 .. L+N`. This is
//! the simplest baseline of the evaluation; it covers the sequential misses
//! that dominate the no-prefetch miss-cycle breakdown (Figure 3) but none of
//! the discontinuities.

use frontend::{ControlFlowMechanism, MechContext};
use sim_core::CacheLine;

/// Next-N-line instruction prefetcher (N = 2 in the paper's configuration).
#[derive(Clone, Copy, Debug)]
pub struct NextLine {
    degree: u64,
}

impl NextLine {
    /// Creates a prefetcher that prefetches the next `degree` lines.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn new(degree: u64) -> Self {
        assert!(degree > 0, "prefetch degree must be non-zero");
        NextLine { degree }
    }

    /// Prefetch degree.
    pub fn degree(&self) -> u64 {
        self.degree
    }
}

// Line-transition contract audit: next-line acts *only* at line-transition
// events (one prefetch burst per demand-fetched line) and keeps no queued
// work, so the default `next_tick_event` of `None` is exact.
impl ControlFlowMechanism for NextLine {
    fn name(&self) -> &'static str {
        "Next Line"
    }

    fn on_demand_fetch(
        &mut self,
        line: CacheLine,
        _previous_line: Option<CacheLine>,
        _missed: bool,
        ctx: &mut MechContext<'_>,
    ) {
        for i in 1..=self.degree {
            ctx.prefetch_line(line.step(i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frontend::Simulator;
    use sim_core::MicroarchConfig;
    use workloads::{CodeLayout, Trace, WorkloadProfile};

    #[test]
    fn construction_and_degree() {
        let p = NextLine::new(4);
        assert_eq!(p.degree(), 4);
        assert_eq!(p.name(), "Next Line");
        assert_eq!(p.storage_overhead_bits(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_degree_rejected() {
        let _ = NextLine::new(0);
    }

    #[test]
    fn next_line_reduces_stall_cycles_vs_baseline() {
        let layout = CodeLayout::generate(&WorkloadProfile::tiny(13));
        let trace = Trace::generate_blocks(&layout, 15_000);
        let baseline = Simulator::new(
            MicroarchConfig::hpca17(),
            &layout,
            trace.blocks(),
            Box::new(frontend::NoPrefetch::new()),
        )
        .run_with_warmup(1_000);
        let next_line = Simulator::new(
            MicroarchConfig::hpca17(),
            &layout,
            trace.blocks(),
            Box::new(NextLine::new(2)),
        )
        .run_with_warmup(1_000);
        assert!(
            next_line.fetch_stall_cycles < baseline.fetch_stall_cycles,
            "next-line ({}) must cover some of the baseline's stalls ({})",
            next_line.fetch_stall_cycles,
            baseline.fetch_stall_cycles
        );
        // Sequential misses are what it covers; it cannot fix BTB misses.
        assert_eq!(
            next_line.squashes.btb_miss > 0,
            baseline.squashes.btb_miss > 0
        );
    }
}
