//! Instruction prefetchers and BTB prefillers evaluated against Boomerang.
//!
//! The paper compares Boomerang against five prior control-flow-delivery
//! mechanisms (§V-A); each is implemented here as a
//! [`ControlFlowMechanism`](frontend::ControlFlowMechanism) plug-in for the
//! front-end simulator:
//!
//! * [`NextLine`] — next-N-line prefetcher,
//! * [`Dip`] — discontinuity prefetcher (8K-entry discontinuity table plus a
//!   next-2-line prefetcher),
//! * [`Fdip`] — fetch-directed instruction prefetching: the FTQ-scanning
//!   prefetch engine of §IV-A,
//! * [`Pif`] — proactive instruction fetch: retire-stream temporal streaming
//!   with private metadata,
//! * [`Shift`] — shared history instruction fetch: the same temporal
//!   streaming with the history virtualised into the LLC,
//! * [`Confluence`] — SHIFT plus predecode-driven BTB prefill.
//!
//! [`MechanismKind`] is the factory the experiment harness uses to build any
//! of them (plus the baseline) by name.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod confluence;
pub mod dip;
pub mod fdip;
pub mod next_line;
pub mod temporal;

pub use confluence::Confluence;
pub use dip::Dip;
pub use fdip::Fdip;
pub use next_line::NextLine;
pub use temporal::{Pif, Shift, TemporalStreamer};

use frontend::{ControlFlowMechanism, NoPrefetch};

/// Factory enum naming every mechanism of the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MechanismKind {
    /// No instruction prefetching and no BTB prefill.
    Baseline,
    /// Next-2-line prefetcher.
    NextLine,
    /// Discontinuity prefetcher + next-2-line.
    Dip,
    /// Fetch-directed instruction prefetching.
    Fdip,
    /// Proactive instruction fetch (private temporal streaming).
    Pif,
    /// Shared history instruction fetch (LLC-virtualised temporal streaming).
    Shift,
    /// Confluence: SHIFT + BTB prefill.
    Confluence,
}

impl MechanismKind {
    /// The six prefetching mechanisms of Figures 7-9, in presentation order
    /// (excluding Boomerang, which lives in the `boomerang` crate).
    pub const FIGURE7: [MechanismKind; 5] = [
        MechanismKind::NextLine,
        MechanismKind::Dip,
        MechanismKind::Fdip,
        MechanismKind::Shift,
        MechanismKind::Confluence,
    ];

    /// Builds the mechanism.
    pub fn build(self) -> Box<dyn ControlFlowMechanism> {
        match self {
            MechanismKind::Baseline => Box::new(NoPrefetch::new()),
            MechanismKind::NextLine => Box::new(NextLine::new(2)),
            MechanismKind::Dip => Box::new(Dip::new(8 * 1024, 2)),
            MechanismKind::Fdip => Box::new(Fdip::new()),
            MechanismKind::Pif => Box::new(Pif::new()),
            MechanismKind::Shift => Box::new(Shift::new()),
            MechanismKind::Confluence => Box::new(Confluence::new()),
        }
    }

    /// Display label used by the figures.
    pub const fn label(self) -> &'static str {
        match self {
            MechanismKind::Baseline => "Baseline",
            MechanismKind::NextLine => "Next Line",
            MechanismKind::Dip => "DIP",
            MechanismKind::Fdip => "FDIP",
            MechanismKind::Pif => "PIF",
            MechanismKind::Shift => "SHIFT",
            MechanismKind::Confluence => "Confluence",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_mechanism() {
        for kind in [
            MechanismKind::Baseline,
            MechanismKind::NextLine,
            MechanismKind::Dip,
            MechanismKind::Fdip,
            MechanismKind::Pif,
            MechanismKind::Shift,
            MechanismKind::Confluence,
        ] {
            let m = kind.build();
            assert!(!m.name().is_empty());
            assert!(!kind.label().is_empty());
        }
        assert_eq!(MechanismKind::FIGURE7.len(), 5);
    }

    #[test]
    fn fetch_directed_flags() {
        assert!(MechanismKind::Fdip.build().is_fetch_directed());
        assert!(!MechanismKind::NextLine.build().is_fetch_directed());
        assert!(!MechanismKind::Shift.build().is_fetch_directed());
    }

    #[test]
    fn metadata_cost_ordering_matches_the_paper() {
        // §II/VI-D: temporal-streaming prefetchers carry hundreds of KB of
        // metadata; FDIP and next-line carry essentially none beyond the FTQ.
        let pif = MechanismKind::Pif.build().storage_overhead_bits();
        let shift = MechanismKind::Shift.build().storage_overhead_bits();
        let confluence = MechanismKind::Confluence.build().storage_overhead_bits();
        let fdip = MechanismKind::Fdip.build().storage_overhead_bits();
        let next_line = MechanismKind::NextLine.build().storage_overhead_bits();
        assert!(pif > 150 * 1024 * 8);
        assert!(shift > 150 * 1024 * 8);
        assert!(confluence >= shift);
        assert!(fdip < 4 * 1024 * 8);
        assert_eq!(next_line, 0);
    }
}
