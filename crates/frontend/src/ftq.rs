//! The fetch target queue (FTQ).
//!
//! The FTQ decouples the branch prediction unit from the fetch engine
//! (Figure 6): the BPU pushes one basic-block fetch target per cycle, the
//! fetch engine consumes them, and the prefetch engine scans newly pushed
//! entries to discover the cache lines the fetch engine will need soon.

use sim_core::Addr;
use std::collections::VecDeque;

/// How the front end arrived at a basic block — the discontinuity classes of
/// Figure 3.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Reached {
    /// Sequential flow: fall-through of a not-taken branch, or the start of
    /// simulation.
    Sequential,
    /// Target of a taken conditional branch.
    ConditionalTaken,
    /// Target of an unconditional branch (jump, call, return, indirect).
    UnconditionalTaken,
}

/// Why the entry's *successor* prediction will turn out wrong (if it will).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SquashCause {
    /// The terminating branch was absent from the BTB and turned out taken.
    BtbMiss,
    /// The branch was in the BTB but its direction or target was mispredicted.
    Misprediction,
}

/// One FTQ entry: a basic block the fetch engine should fetch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FtqEntry {
    /// Index of the corresponding block in the oracle trace.
    pub oracle_index: usize,
    /// Start address of the block.
    pub start: Addr,
    /// Number of instructions in the block.
    pub instructions: u64,
    /// How the front end reached this block.
    pub reached: Reached,
    /// Set when the BPU already knows its prediction of this block's
    /// successor is wrong; the fetch of this entry will be followed by a
    /// pipeline squash of the given cause.
    pub mispredicted: Option<SquashCause>,
    /// `true` when the entry was produced while the BPU had no BTB entry for
    /// the block and fell back to sequential instruction-by-instruction
    /// enqueueing (FDIP's behaviour under a BTB miss).
    pub sequential_guess: bool,
}

/// The fetch target queue.
#[derive(Clone, Debug)]
pub struct Ftq {
    entries: VecDeque<FtqEntry>,
    capacity: usize,
}

impl Ftq {
    /// Creates an FTQ with the given capacity (32 entries in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "the FTQ needs at least one entry");
        Ftq {
            entries: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` if no more entries can be pushed.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// Pushes an entry.
    ///
    /// # Panics
    ///
    /// Panics if the FTQ is full; the BPU must check [`Ftq::is_full`] first.
    pub fn push(&mut self, entry: FtqEntry) {
        assert!(!self.is_full(), "FTQ overflow");
        self.entries.push_back(entry);
    }

    /// Pops the oldest entry.
    pub fn pop(&mut self) -> Option<FtqEntry> {
        self.entries.pop_front()
    }

    /// Peeks at the oldest entry.
    pub fn front(&self) -> Option<&FtqEntry> {
        self.entries.front()
    }

    /// Discards every entry (pipeline squash).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over the queued entries from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &FtqEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: usize) -> FtqEntry {
        FtqEntry {
            oracle_index: i,
            start: Addr::new(0x1000 + i as u64 * 0x20),
            instructions: 4,
            reached: Reached::Sequential,
            mispredicted: None,
            sequential_guess: false,
        }
    }

    #[test]
    fn fifo_order_and_capacity() {
        let mut ftq = Ftq::new(3);
        assert!(ftq.is_empty());
        ftq.push(entry(0));
        ftq.push(entry(1));
        ftq.push(entry(2));
        assert!(ftq.is_full());
        assert_eq!(ftq.len(), 3);
        assert_eq!(ftq.front().unwrap().oracle_index, 0);
        assert_eq!(ftq.pop().unwrap().oracle_index, 0);
        assert_eq!(ftq.pop().unwrap().oracle_index, 1);
        assert_eq!(ftq.pop().unwrap().oracle_index, 2);
        assert_eq!(ftq.pop(), None);
    }

    #[test]
    fn clear_on_squash() {
        let mut ftq = Ftq::new(4);
        ftq.push(entry(0));
        ftq.push(entry(1));
        ftq.clear();
        assert!(ftq.is_empty());
        assert_eq!(ftq.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "FTQ overflow")]
    fn overflow_panics() {
        let mut ftq = Ftq::new(1);
        ftq.push(entry(0));
        ftq.push(entry(1));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = Ftq::new(0);
    }
}
