//! Lane-batched multi-row simulation: one trace replay drives many rows.
//!
//! Every campaign group simulates the *same* generated trace once per
//! (mechanism, config) row; the decoded trace stream, line predecode and
//! per-workload latency-class stream are identical across rows — only the
//! per-row timing state (fetch/FTQ/ROB, BPU, BTB, L1-I/LLC hierarchy,
//! prefetch buffers, mechanism) differs. [`LaneSimulator`] packs one
//! complete row state per lane in a flat [`LaneSlab`] and advances the lanes
//! in chunked round-robin over shared block-count targets, so the
//! memory-bound trace + latency-stream footprint (the residual campaign cost
//! identified when the serial-optimisation road closed) is walked through
//! the cache hierarchy once per chunk for the whole group instead of once
//! per row.
//!
//! # Byte parity
//!
//! Lane batching is a *schedule*, not an engine: each lane is a full
//! [`Simulator`] driven through the resumable split
//! ([`Simulator::begin_run`] / [`Simulator::advance_to_block`] /
//! [`Simulator::finish_run`]), and pausing a lane at a block target is
//! transition-invariant — every engine iteration is self-contained and
//! commits at most one block. Any interleaving of lanes therefore produces
//! statistics bit-identical to running each row alone; the differential
//! suite in `boomerang/tests/lane_differential.rs` enforces this across all
//! nine mechanism variants.
//!
//! # Shared-trace-cursor invariant
//!
//! Lanes may never write the decoded stream. This is enforced by
//! construction — every lane borrows the trace as `&[DynamicBlock]` — and
//! re-asserted at slab build time: all lanes must reference the *same*
//! trace slice (identical pointer and length), so a group can never be
//! assembled from rows of different workloads.

use crate::mechanism::ControlFlowMechanism;
use crate::simulator::Simulator;
use crate::stats::SimStats;
use sim_core::LaneSlab;

/// Default round-robin chunk, in committed trace blocks per lane turn.
///
/// Large enough that per-lane bookkeeping is noise, small enough that the
/// chunk's slice of the shared trace and latency-class stream stays resident
/// while every lane of the group replays it.
pub const DEFAULT_CHUNK_BLOCKS: usize = 4096;

/// A multi-lane engine: N complete per-row simulators advanced in chunked
/// round-robin over one shared immutable trace.
///
/// Lanes diverge in timing and advance independently — each keeps its own
/// event horizon and streaming windows — but all consume the shared trace
/// cursor, so group simulation pays the trace-footprint memory traffic once
/// per chunk rather than once per row.
pub struct LaneSimulator<'a, M: ControlFlowMechanism + ?Sized = dyn ControlFlowMechanism> {
    lanes: LaneSlab<Simulator<'a, M>>,
    done: Box<[bool]>,
    chunk_blocks: usize,
}

impl<'a, M: ControlFlowMechanism + ?Sized> LaneSimulator<'a, M> {
    /// Packs already-constructed row simulators into a lane slab.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is empty or if the lanes do not all share the same
    /// decoded trace slice (the shared-trace-cursor invariant).
    pub fn new(lanes: Vec<Simulator<'a, M>>) -> Self {
        assert!(
            !lanes.is_empty(),
            "lane-batched run needs at least one lane"
        );
        let trace = lanes[0].trace_stream();
        for lane in &lanes[1..] {
            let other = lane.trace_stream();
            assert!(
                std::ptr::eq(trace.as_ptr(), other.as_ptr()) && trace.len() == other.len(),
                "all lanes of a group must share one decoded trace stream"
            );
        }
        let done = vec![false; lanes.len()].into_boxed_slice();
        Self {
            lanes: LaneSlab::from_vec(lanes),
            done,
            chunk_blocks: DEFAULT_CHUNK_BLOCKS,
        }
    }

    /// Overrides the round-robin chunk size (committed blocks per lane
    /// turn). Chunking affects only the schedule, never the statistics.
    pub fn with_chunk_blocks(mut self, blocks: usize) -> Self {
        self.chunk_blocks = blocks.max(1);
        self
    }

    /// Number of lanes in the slab.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Runs every lane to completion and returns per-lane statistics in lane
    /// order, bit-identical to running each lane's simulator alone with
    /// [`Simulator::run_with_warmup`].
    pub fn run(&mut self, warmup_blocks: usize) -> Vec<SimStats> {
        let total = self.lanes[0].trace_blocks();
        let mut remaining = self.lanes.len();
        for lane in self.lanes.iter_mut() {
            lane.begin_run(warmup_blocks);
        }
        let mut target = 0usize;
        while remaining > 0 {
            target = if target >= total {
                // Tail: a lane past the trace end can only be waiting on its
                // cycle safety bound; drive it unbounded.
                usize::MAX
            } else {
                target.saturating_add(self.chunk_blocks)
            };
            for lane in 0..self.lanes.len() {
                if !self.done[lane] && self.lanes[lane].advance_to_block(target) {
                    self.done[lane] = true;
                    remaining -= 1;
                }
            }
        }
        self.lanes.iter_mut().map(Simulator::finish_run).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::NoPrefetch;
    use sim_core::MicroarchConfig;
    use workloads::{CodeLayout, Trace, WorkloadProfile};

    fn build_sim<'a>(layout: &'a CodeLayout, trace: &'a Trace) -> Simulator<'a, NoPrefetch> {
        Simulator::new(
            MicroarchConfig::hpca17(),
            layout,
            trace.blocks(),
            Box::new(NoPrefetch::new()),
        )
    }

    #[test]
    fn lanes_match_single_row_for_any_chunking() {
        let layout = CodeLayout::generate(&WorkloadProfile::tiny(7));
        let trace = Trace::generate_blocks(&layout, 4_000);
        let expected = build_sim(&layout, &trace).run_with_warmup(500);

        for chunk in [1, 37, 4096, usize::MAX] {
            let sims = vec![build_sim(&layout, &trace), build_sim(&layout, &trace)];
            let stats = LaneSimulator::new(sims).with_chunk_blocks(chunk).run(500);
            assert_eq!(stats.len(), 2);
            assert_eq!(stats[0], expected, "chunk {chunk} lane 0 diverged");
            assert_eq!(stats[1], expected, "chunk {chunk} lane 1 diverged");
        }
    }

    #[test]
    #[should_panic(expected = "share one decoded trace stream")]
    fn rejects_lanes_with_different_traces() {
        let layout = CodeLayout::generate(&WorkloadProfile::tiny(7));
        let trace_a = Trace::generate_blocks(&layout, 1_000);
        let trace_b = Trace::generate_blocks(&layout, 1_000);
        let _ = LaneSimulator::new(vec![
            build_sim(&layout, &trace_a),
            build_sim(&layout, &trace_b),
        ]);
    }
}
