//! The control-flow-delivery mechanism interface.
//!
//! Every scheme the paper compares — next-line, DIP, FDIP, PIF/SHIFT,
//! Confluence, Boomerang — plugs into the simulator through
//! [`ControlFlowMechanism`]. The simulator owns the shared front-end state
//! (BTB, BTB prefetch buffer, L1-I hierarchy, code layout) and exposes it to
//! the mechanism through [`MechContext`] at every hook.

use crate::ftq::{FtqEntry, SquashCause};
use btb::{BasicBlockBtb, BtbEntry, BtbPrefetchBuffer};
use cache::InstructionHierarchy;
use sim_core::{Addr, CacheLine, DynamicBlock, MicroarchConfig};
use workloads::CodeLayout;

/// What the branch prediction unit should do when it encounters a BTB miss.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BtbMissAction {
    /// Keep feeding the FTQ along the sequential path, one instruction per
    /// cycle, until the next BTB hit (FDIP's policy, §V-A). The BPU charges
    /// one cycle per instruction of the missing block.
    ContinueSequential,
    /// Halt FTQ filling until the given cycle, by which time the mechanism
    /// has prefilled the missing entry (Boomerang's policy, §IV-B).
    StallUntil {
        /// Cycle at which the BTB miss is resolved and the BPU may retry.
        ready_at: u64,
    },
}

/// Shared front-end state handed to every mechanism hook.
pub struct MechContext<'a> {
    /// Current cycle.
    pub now: u64,
    /// Microarchitectural configuration.
    pub config: &'a MicroarchConfig,
    /// Static code layout (the predecoder's view of memory).
    pub layout: &'a CodeLayout,
    /// Instruction memory hierarchy (issue prefetch probes here).
    pub hierarchy: &'a mut InstructionHierarchy,
    /// The core's basic-block BTB.
    pub btb: &'a mut BasicBlockBtb,
    /// The BTB prefetch buffer (only Boomerang and Confluence write to it).
    pub btb_prefetch_buffer: &'a mut BtbPrefetchBuffer,
}

/// Predecodes the cache line in `layout`, yielding a BTB entry for every
/// branch it contains, in address order. Allocation-free: mechanisms that
/// predecode on the hot path (Confluence on every demand fetch, Boomerang on
/// every BTB miss probe) iterate this while mutating the rest of their
/// [`MechContext`].
pub fn predecode_line_iter(
    layout: &CodeLayout,
    line: CacheLine,
) -> impl Iterator<Item = BtbEntry> + '_ {
    layout.branches_in_line(line).iter().map(move |&id| {
        let sb = layout.block(id);
        BtbEntry::from_block(sb.start(), sb.block.instructions, sb.terminator())
    })
}

impl MechContext<'_> {
    /// Issues an L1-I prefetch probe for `line` (§IV-A). Returns `true` if a
    /// fill was started.
    pub fn prefetch_line(&mut self, line: CacheLine) -> bool {
        self.hierarchy.prefetch_probe(line, self.now)
    }

    /// Predecodes the cache line containing `addr` and returns BTB entries
    /// for every *direct* branch it contains (indirect branches and returns
    /// carry no target in the instruction bytes, so no entry can be built for
    /// them — the same limitation real predecoders have).
    ///
    /// Hot paths should prefer the allocation-free [`predecode_line_iter`].
    pub fn predecode_line(&self, line: CacheLine) -> Vec<BtbEntry> {
        predecode_line_iter(self.layout, line).collect()
    }

    /// The first basic block whose terminating branch lies at or after
    /// `addr`, as a prefilled BTB entry — what Boomerang's predecoder derives
    /// while resolving a BTB miss for the block starting at `addr`.
    pub fn predecode_block_at(&self, addr: Addr) -> Option<BtbEntry> {
        let id = self.layout.next_branch_at_or_after(addr)?;
        let sb = self.layout.block(id);
        // The missing BTB entry starts at `addr` and ends at the next branch.
        let size = (sb.branch_pc().raw() - addr.raw()) / sim_core::INSTRUCTION_BYTES + 1;
        Some(BtbEntry {
            block_start: addr,
            block_size: size.clamp(1, sim_core::MAX_BASIC_BLOCK_INSTRUCTIONS),
            kind: sb.terminator().kind,
            target: sb.terminator().target,
        })
    }
}

/// A control-flow-delivery mechanism (instruction prefetcher and/or BTB
/// prefiller).
///
/// All hooks have default no-op implementations, so the no-prefetch baseline
/// is simply [`NoPrefetch`].
///
/// # The line-transition event contract
///
/// The hook set below is the mechanism's *complete* event vocabulary, and it
/// is deliberately block/line-granular: a mechanism observes the front end
/// at FTQ pushes, demand-fetched **cache-line transitions**
/// ([`on_demand_fetch`](Self::on_demand_fetch)), block commits, BTB misses,
/// squashes and its own due ticks ([`next_tick_event`](Self::next_tick_event))
/// — never per fetched instruction and never per cycle of uniform
/// straight-line streaming. This mirrors the paper's thesis that control
/// flow *events* (discontinuities, misses, fills) are where delivery
/// machinery acts, while the bytes between them stream untouched.
///
/// The event-horizon engine leans on this contract: when the fetch engine
/// is draining instructions out of an already-accessed L1-hit line with no
/// other unit active, the simulator solves the whole window — instruction
/// delivery, ROB occupancy/retire flow and stall accounting — in closed
/// form (`BackEnd::stream_window`) *without consulting the mechanism*, and
/// re-enters exact per-event execution at the next line transition or block
/// commit. Concretely the engine guarantees, and a conforming mechanism may
/// assume:
///
/// * every hook fires at its exact cycle, with `ctx.now` exact — the one
///   documented exception being `on_ftq_push`'s batching-window timestamp
///   coarsening (see its timestamp-invariance contract below);
/// * consecutive instructions delivered from within one cache line generate
///   **no** events between that line's `on_demand_fetch` and the block's
///   `on_commit` (or the next line's `on_demand_fetch`);
/// * `tick` runs at every cycle the mechanism declared live through
///   [`next_tick_event`](Self::next_tick_event), including inside batched
///   windows, which end no later than the next due tick.
///
/// A mechanism therefore must not try to infer per-cycle fetch progress
/// between events (there is no hook through which it could), and must keep
/// [`next_tick_event`](Self::next_tick_event) conservative — those are the
/// only two obligations; every mechanism in the evaluation (audited:
/// baseline, next-line, DIP, FDIP, PIF, SHIFT, Confluence, and Boomerang
/// under both throttle extremes) already satisfies them structurally, which
/// the engine-differential suite pins down with streaming-heavy randomized
/// workloads (`streaming_fast_forward_matches_reference_over_randomized_profiles`
/// in `crates/boomerang/tests/engine_differential.rs`).
pub trait ControlFlowMechanism {
    /// Mechanism name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Called once per new FTQ entry (the prefetch engine's scan, §IV-A).
    ///
    /// # Timestamp-invariance contract
    ///
    /// Implementations must be **timestamp-invariant**: their behaviour may
    /// not depend on `ctx.now` in any way that is observable in simulation
    /// statistics. Concretely, `on_ftq_push` may inspect the entry and
    /// *record* work — enqueue prefetch candidates for a later
    /// [`tick`](Self::tick), update timestamp-free internal tables — but it
    /// must not read `ctx.now` and must not invoke time-stamped operations
    /// on the shared front-end state (no [`MechContext::prefetch_line`] /
    /// hierarchy probes, whose fill completion times are functions of
    /// `now`). Deferring issue to `tick` is not a modelling restriction:
    /// probes issue at full rate starting the same cycle as the push,
    /// because the simulator ticks the mechanism after the BPU every cycle.
    ///
    /// The event-horizon engine relies on this contract to batch the
    /// BPU-only trickle cycles of an L1-I fill stall: within one stall
    /// window, every `on_ftq_push` observes the window's *first* cycle as
    /// `ctx.now` while pushes logically occupy consecutive cycles. A
    /// timestamp-dependent implementation would tie report bytes to the
    /// engine's batching decisions and break the bit-identical-statistics
    /// guarantee. The contract is enforced by a property test
    /// (`ftq_push_timestamp_invariance` in
    /// `crates/boomerang/tests/engine_differential.rs`) that jitters the
    /// timestamp seen by every mechanism variant's `on_ftq_push` and
    /// asserts final statistics are unchanged.
    fn on_ftq_push(&mut self, _entry: &FtqEntry, _ctx: &mut MechContext<'_>) {}

    /// Called for every cache line the fetch engine demand-fetches, before
    /// the access outcome is known. `missed` reports whether the access
    /// stalled (used by miss-triggered prefetchers such as DIP).
    ///
    /// This is the *line-transition event* of the trait-level contract: it
    /// fires exactly once per line the fetch engine crosses into (at the
    /// exact crossing cycle), and it is the only notification straight-line
    /// streaming generates between a block's start and its commit. The
    /// instructions delivered from within the line are invisible to the
    /// mechanism — by design, and the batched streaming window relies on it.
    fn on_demand_fetch(
        &mut self,
        _line: CacheLine,
        _previous_line: Option<CacheLine>,
        _missed: bool,
        _ctx: &mut MechContext<'_>,
    ) {
    }

    /// Called when a correct-path basic block commits (PIF and SHIFT build
    /// their temporal history from the retire stream).
    fn on_commit(&mut self, _block: &DynamicBlock, _ctx: &mut MechContext<'_>) {}

    /// Called when the BPU misses in the BTB for the block starting at
    /// `fetch_addr`; `taken_hint` is `None` (mechanisms must not peek at the
    /// oracle outcome).
    fn on_btb_miss(&mut self, _fetch_addr: Addr, _ctx: &mut MechContext<'_>) -> BtbMissAction {
        BtbMissAction::ContinueSequential
    }

    /// Called once per simulated cycle.
    fn tick(&mut self, _ctx: &mut MechContext<'_>) {}

    /// The earliest cycle at which [`ControlFlowMechanism::tick`] would do
    /// any work, given that no other hook runs first.
    ///
    /// * `None` — `tick` is a no-op until some other hook (`on_ftq_push`,
    ///   `on_demand_fetch`, `on_commit`, `on_btb_miss`, `on_squash`) mutates
    ///   the mechanism. This is the default for mechanisms with an empty
    ///   `tick`.
    /// * `Some(t)` — `tick` is a no-op at every cycle strictly before `t`
    ///   (mechanisms with queued work that becomes ready at `t`; `Some(0)`
    ///   means "work is ready right now").
    ///
    /// The event-horizon engine uses this to bulk-advance over cycles where
    /// every unit is provably idle; an implementation that under-reports
    /// (claims idleness while `tick` would mutate state) breaks the
    /// bit-identical-statistics guarantee, so implementations must be
    /// conservative.
    fn next_tick_event(&self) -> Option<u64> {
        None
    }

    /// Called when the pipeline squashes.
    fn on_squash(&mut self, _cause: SquashCause, _ctx: &mut MechContext<'_>) {}

    /// Metadata storage this mechanism adds beyond the baseline core, in bits
    /// (§VI-D).
    fn storage_overhead_bits(&self) -> u64 {
        0
    }

    /// `true` if the mechanism scans the FTQ to generate prefetches
    /// (FDIP-family). Such mechanisms also benefit from the simulator's
    /// wrong-path sequential prefetch emulation while a squash is pending.
    fn is_fetch_directed(&self) -> bool {
        false
    }
}

/// The no-prefetch baseline: a conventional front end with no instruction
/// prefetcher and no BTB prefill.
///
/// Line-transition contract audit: every hook is the default no-op and
/// `next_tick_event` is `None`, so the baseline trivially satisfies the
/// contract.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoPrefetch;

impl NoPrefetch {
    /// Creates the baseline mechanism.
    pub const fn new() -> Self {
        NoPrefetch
    }
}

impl ControlFlowMechanism for NoPrefetch {
    fn name(&self) -> &'static str {
        "Baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::WorkloadProfile;

    #[test]
    fn no_prefetch_defaults() {
        let mut m = NoPrefetch::new();
        assert_eq!(m.name(), "Baseline");
        assert_eq!(m.storage_overhead_bits(), 0);
        assert!(!m.is_fetch_directed());

        let config = MicroarchConfig::hpca17();
        let layout = CodeLayout::generate(&WorkloadProfile::tiny(5));
        let mut hierarchy = InstructionHierarchy::new(&config);
        let mut btb = BasicBlockBtb::new(config.btb_entries, config.btb_ways);
        let mut buffer = BtbPrefetchBuffer::new(config.btb_prefetch_buffer_entries);
        let mut ctx = MechContext {
            now: 0,
            config: &config,
            layout: &layout,
            hierarchy: &mut hierarchy,
            btb: &mut btb,
            btb_prefetch_buffer: &mut buffer,
        };
        // Default hooks are no-ops and the default BTB-miss policy is FDIP's.
        assert_eq!(
            m.on_btb_miss(Addr::new(0x40_0000), &mut ctx),
            BtbMissAction::ContinueSequential
        );
        m.tick(&mut ctx);
        m.on_squash(SquashCause::BtbMiss, &mut ctx);
    }

    #[test]
    fn predecode_matches_layout() {
        let config = MicroarchConfig::hpca17();
        let layout = CodeLayout::generate(&WorkloadProfile::tiny(5));
        let mut hierarchy = InstructionHierarchy::new(&config);
        let mut btb = BasicBlockBtb::new(config.btb_entries, config.btb_ways);
        let mut buffer = BtbPrefetchBuffer::new(config.btb_prefetch_buffer_entries);
        let ctx = MechContext {
            now: 0,
            config: &config,
            layout: &layout,
            hierarchy: &mut hierarchy,
            btb: &mut btb,
            btb_prefetch_buffer: &mut buffer,
        };

        // Predecoding the line of a known block's branch must include an
        // entry whose branch PC matches.
        let sb = &layout.blocks()[3];
        let line = layout.geometry().line_of(sb.branch_pc());
        let entries = ctx.predecode_line(line);
        assert!(entries.iter().any(|e| e.branch_pc() == sb.branch_pc()));

        // predecode_block_at from the block's start reconstructs the block.
        let e = ctx.predecode_block_at(sb.start()).unwrap();
        assert_eq!(e.block_start, sb.start());
        assert_eq!(e.block_size, sb.block.instructions);
        assert_eq!(e.kind, sb.terminator().kind);

        // From the middle of the block the entry is shorter but ends at the
        // same branch.
        if sb.block.instructions > 1 {
            let mid = sb.start().add_instructions(1);
            let e2 = ctx.predecode_block_at(mid).unwrap();
            assert_eq!(e2.block_start, mid);
            assert_eq!(e2.branch_pc(), sb.branch_pc());
        }
    }
}
