//! Simulation metrics: exactly the quantities the paper's figures report.

use crate::ftq::{Reached, SquashCause};
use serde::{Deserialize, Serialize};

/// Front-end stall cycles broken down by the discontinuity class of the
/// missing block (Figure 3's categories).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissBreakdown {
    /// Stall cycles on blocks reached sequentially.
    pub sequential: u64,
    /// Stall cycles on blocks reached through a taken conditional branch.
    pub conditional: u64,
    /// Stall cycles on blocks reached through an unconditional branch.
    pub unconditional: u64,
}

impl MissBreakdown {
    /// Adds `cycles` to the category for `reached`.
    pub fn add(&mut self, reached: Reached, cycles: u64) {
        match reached {
            Reached::Sequential => self.sequential += cycles,
            Reached::ConditionalTaken => self.conditional += cycles,
            Reached::UnconditionalTaken => self.unconditional += cycles,
        }
    }

    /// Total stall cycles across the three categories.
    pub fn total(&self) -> u64 {
        self.sequential + self.conditional + self.unconditional
    }

    /// The three categories as fractions of the total.
    pub fn fractions(&self) -> [f64; 3] {
        let total = self.total();
        if total == 0 {
            return [0.0; 3];
        }
        [
            self.sequential as f64 / total as f64,
            self.conditional as f64 / total as f64,
            self.unconditional as f64 / total as f64,
        ]
    }
}

/// Pipeline squash counts split by cause (Figure 7's categories).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SquashStats {
    /// Squashes caused by BTB misses on eventually-taken branches.
    pub btb_miss: u64,
    /// Squashes caused by direction or target mispredictions.
    pub misprediction: u64,
}

impl SquashStats {
    /// Records one squash.
    pub fn record(&mut self, cause: SquashCause) {
        match cause {
            SquashCause::BtbMiss => self.btb_miss += 1,
            SquashCause::Misprediction => self.misprediction += 1,
        }
    }

    /// Total squashes.
    pub fn total(&self) -> u64 {
        self.btb_miss + self.misprediction
    }

    /// Squashes per kilo-instruction.
    pub fn per_kilo_instruction(&self, instructions: u64) -> SquashRates {
        let scale = |n: u64| {
            if instructions == 0 {
                0.0
            } else {
                n as f64 * 1000.0 / instructions as f64
            }
        };
        SquashRates {
            btb_miss: scale(self.btb_miss),
            misprediction: scale(self.misprediction),
        }
    }
}

/// Squashes per kilo-instruction, by cause.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SquashRates {
    /// BTB-miss-induced squashes per kilo-instruction.
    pub btb_miss: f64,
    /// Misprediction-induced squashes per kilo-instruction.
    pub misprediction: f64,
}

impl SquashRates {
    /// Total squashes per kilo-instruction.
    pub fn total(&self) -> f64 {
        self.btb_miss + self.misprediction
    }
}

/// Full set of metrics produced by one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Correct-path instructions fetched and retired.
    pub instructions: u64,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Correct-path cycles the fetch engine stalled waiting for an L1-I fill.
    pub fetch_stall_cycles: u64,
    /// Breakdown of those stall cycles by discontinuity class.
    pub miss_breakdown: MissBreakdown,
    /// Cycles the fetch engine idled because of a pipeline squash (resolution
    /// latency plus refill bubbles).
    pub squash_stall_cycles: u64,
    /// Cycles the fetch engine idled because the FTQ was empty for another
    /// reason (e.g. the BPU stalled resolving a BTB miss in Boomerang).
    pub ftq_empty_cycles: u64,
    /// Cycles fetch was blocked because the ROB was full (back-end bound).
    pub rob_full_cycles: u64,
    /// Pipeline squashes by cause.
    pub squashes: SquashStats,
    /// BTB lookups made by the branch prediction unit.
    pub btb_lookups: u64,
    /// BTB misses observed by the branch prediction unit.
    pub btb_misses: u64,
    /// Demand fetches that hit in the L1-I prefetch buffer.
    pub prefetch_buffer_hits: u64,
    /// Prefetch probes issued to the memory hierarchy.
    pub prefetches_issued: u64,
    /// Conditional branches whose direction was predicted.
    pub conditional_predictions: u64,
    /// Conditional branches whose direction was mispredicted.
    pub conditional_mispredictions: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Squashes per kilo-instruction by cause.
    pub fn squashes_per_kilo(&self) -> SquashRates {
        self.squashes.per_kilo_instruction(self.instructions)
    }

    /// Conditional direction misprediction rate.
    pub fn misprediction_rate(&self) -> f64 {
        if self.conditional_predictions == 0 {
            0.0
        } else {
            self.conditional_mispredictions as f64 / self.conditional_predictions as f64
        }
    }

    /// BTB miss rate seen by the branch prediction unit.
    pub fn btb_miss_rate(&self) -> f64 {
        if self.btb_lookups == 0 {
            0.0
        } else {
            self.btb_misses as f64 / self.btb_lookups as f64
        }
    }

    /// Front-end stall-cycle coverage relative to a baseline run (Figures 2,
    /// 5, 8): the fraction of the baseline's fetch stall cycles this run
    /// eliminated.
    pub fn stall_coverage_vs(&self, baseline: &SimStats) -> f64 {
        sim_core::stats::coverage(baseline.fetch_stall_cycles, self.fetch_stall_cycles)
    }

    /// Speedup relative to a baseline run with the same instruction count
    /// (Figures 1, 9, 10, 11).
    pub fn speedup_vs(&self, baseline: &SimStats) -> f64 {
        sim_core::stats::speedup(baseline.cycles, self.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_breakdown_accounting() {
        let mut b = MissBreakdown::default();
        b.add(Reached::Sequential, 50);
        b.add(Reached::ConditionalTaken, 30);
        b.add(Reached::UnconditionalTaken, 20);
        assert_eq!(b.total(), 100);
        let f = b.fractions();
        assert!((f[0] - 0.5).abs() < 1e-12);
        assert!((f[1] - 0.3).abs() < 1e-12);
        assert!((f[2] - 0.2).abs() < 1e-12);
        assert_eq!(MissBreakdown::default().fractions(), [0.0; 3]);
    }

    #[test]
    fn squash_rates() {
        let mut s = SquashStats::default();
        for _ in 0..6 {
            s.record(SquashCause::BtbMiss);
        }
        for _ in 0..4 {
            s.record(SquashCause::Misprediction);
        }
        assert_eq!(s.total(), 10);
        let rates = s.per_kilo_instruction(2000);
        assert!((rates.btb_miss - 3.0).abs() < 1e-12);
        assert!((rates.misprediction - 2.0).abs() < 1e-12);
        assert!((rates.total() - 5.0).abs() < 1e-12);
        assert_eq!(s.per_kilo_instruction(0).total(), 0.0);
    }

    #[test]
    fn derived_metrics() {
        let baseline = SimStats {
            instructions: 1000,
            cycles: 2000,
            fetch_stall_cycles: 800,
            ..SimStats::default()
        };
        let improved = SimStats {
            instructions: 1000,
            cycles: 1000,
            fetch_stall_cycles: 200,
            ..SimStats::default()
        };
        assert!((baseline.ipc() - 0.5).abs() < 1e-12);
        assert!((improved.stall_coverage_vs(&baseline) - 0.75).abs() < 1e-12);
        assert!((improved.speedup_vs(&baseline) - 2.0).abs() < 1e-12);
        assert_eq!(SimStats::default().ipc(), 0.0);
        assert_eq!(SimStats::default().misprediction_rate(), 0.0);
        assert_eq!(SimStats::default().btb_miss_rate(), 0.0);
    }
}
