//! The cycle-level decoupled front-end simulator.
//!
//! One [`Simulator`] instance runs one workload trace through one
//! control-flow-delivery mechanism under one microarchitectural
//! configuration, and produces the [`SimStats`] from which every figure of
//! the paper is derived.
//!
//! # Model
//!
//! The simulator is trace-driven and oracle-assisted: the branch prediction
//! unit walks the *actual* dynamic basic-block sequence, making a prediction
//! for every block's successor using the BTB, the direction predictor and the
//! return address stack. Correctly predicted blocks flow through the FTQ to
//! the fetch engine; a wrong prediction (or a BTB miss on a taken branch)
//! marks the block, and when its fetch completes the pipeline models the
//! wrong-path episode: the front end stops delivering useful work for the
//! branch-resolution latency, fetch-directed mechanisms keep issuing
//! wrong-path sequential prefetches, and the squash is charged to its cause
//! (BTB miss vs. direction/target misprediction — the two bars of Figure 7).
//!
//! The fetch engine consumes FTQ entries at the core's fetch width, accessing
//! the L1-I for every cache line it crosses; misses stall it for the fill
//! latency, and those correct-path stall cycles — classified by the
//! discontinuity type that reached the block (Figure 3) — are the paper's
//! coverage metric. A finite ROB with data stalls provides back-pressure so
//! that front-end improvements translate into realistic end-to-end speedups.

use crate::backend::BackEnd;
use crate::ftq::{Ftq, FtqEntry, Reached, SquashCause};
use crate::mechanism::{BtbMissAction, ControlFlowMechanism, MechContext};
use crate::stats::SimStats;
use branch_pred::{DirectionPredictor, PredictorKind, ReturnAddressStack};
use btb::{BasicBlockBtb, BtbEntry, BtbPrefetchBuffer};
use cache::{HitLevel, InstructionHierarchy};
use sim_core::{Addr, BranchKind, CacheLine, DynamicBlock, MicroarchConfig};
use workloads::CodeLayout;

/// Maximum number of wrong-path sequential lines prefetched while a squash is
/// pending (the emulation of FDIP's wrong-path behaviour).
const WRONG_PATH_PREFETCH_LIMIT: u64 = 8;

/// Which execution engine drives a simulation run.
///
/// Both engines produce bit-identical [`SimStats`]; the reference stepper
/// exists as the differential-testing oracle and the benchmark baseline.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SimEngine {
    /// Bulk-advances over provably dead cycles (the default).
    #[default]
    EventHorizon,
    /// Executes every cycle with one [`Simulator::step`] call.
    PerCycleReference,
}

impl SimEngine {
    /// Stable token naming the engine (used in benchmark reports).
    pub const fn token(self) -> &'static str {
        match self {
            SimEngine::EventHorizon => "event-horizon",
            SimEngine::PerCycleReference => "per-cycle-reference",
        }
    }
}

/// State of a pending wrong-path episode.
#[derive(Clone, Copy, Debug)]
struct WrongPath {
    resolve_at: u64,
    cause: SquashCause,
    next_prefetch_line: CacheLine,
    lines_prefetched: u64,
}

/// State of the block currently being fetched.
#[derive(Clone, Copy, Debug)]
struct FetchState {
    entry: FtqEntry,
    /// Instruction offset within the block.
    pos: u64,
    /// Cycle until which the fetch engine is stalled on an L1-I fill.
    busy_until: u64,
    /// Line already accessed (and therefore not to be re-accessed on resume).
    accessed_line: Option<CacheLine>,
}

/// The front-end simulator.
///
/// Generic over the mechanism's concrete type `M`, defaulting to the boxed
/// trait object (`Simulator<'a>` keeps meaning what it always did). Hot
/// paths call the mechanism's hooks roughly ten times per simulated block,
/// so the campaign engine instantiates the simulator with a concrete
/// enum-dispatch mechanism type instead: the hooks then compile to direct
/// (inlinable) calls guarded by one predictable match, and the many empty
/// hooks cost nothing.
pub struct Simulator<'a, M: ControlFlowMechanism + ?Sized = dyn ControlFlowMechanism> {
    config: MicroarchConfig,
    layout: &'a CodeLayout,
    trace: &'a [DynamicBlock],
    mechanism: Box<M>,

    hierarchy: InstructionHierarchy,
    btb: BasicBlockBtb,
    btb_prefetch_buffer: BtbPrefetchBuffer,
    predictor: Box<dyn DirectionPredictor>,
    ras: ReturnAddressStack,
    ftq: Ftq,
    backend: BackEnd<'a>,

    now: u64,
    stats: SimStats,
    /// Cycles actually executed by [`step`](Self::step) (diagnostic: the
    /// event-horizon engine's win is `stats.cycles - stepped_cycles`).
    stepped_cycles: u64,
    /// Cycles covered by batched fill-stall windows (diagnostic; see
    /// [`trickle_fill_stall`](Self::trickle_fill_stall)).
    trickled_cycles: u64,
    /// Cycles covered by block-granular streaming fast-forward windows
    /// (diagnostic; see [`stream_fast_forward`](Self::stream_fast_forward)).
    bulk_fetched_cycles: u64,
    bpu_index: usize,
    committed_blocks: usize,
    bpu_busy_until: u64,
    bpu_stalled_until: u64,
    bpu_waiting_for_squash: bool,
    next_reached: Reached,
    wrong_path: Option<WrongPath>,
    fetch: Option<FetchState>,
    last_fetched_line: Option<CacheLine>,

    // Resumable-run bookkeeping (set by `begin_run`, used by
    // `advance_to_block`): lets an external scheduler — the lane-batched
    // engine — time-slice a run without changing any state transition.
    warmup_blocks: usize,
    warmup_done: bool,
    max_cycles: u64,
}

impl<'a, M: ControlFlowMechanism + ?Sized> Simulator<'a, M> {
    /// Creates a simulator for `trace` (generated from `layout`) running the
    /// given mechanism with the TAGE predictor of Table I.
    pub fn new(
        config: MicroarchConfig,
        layout: &'a CodeLayout,
        trace: &'a [DynamicBlock],
        mechanism: Box<M>,
    ) -> Self {
        Self::with_predictor(config, layout, trace, mechanism, PredictorKind::Tage)
    }

    /// Creates a simulator with an explicit direction-predictor choice
    /// (used by the Figure 2 ablation).
    pub fn with_predictor(
        config: MicroarchConfig,
        layout: &'a CodeLayout,
        trace: &'a [DynamicBlock],
        mechanism: Box<M>,
        predictor: PredictorKind,
    ) -> Self {
        config.validate().expect("invalid configuration");
        let hierarchy = InstructionHierarchy::new(&config);
        let btb = BasicBlockBtb::new(config.btb_entries, config.btb_ways);
        let btb_prefetch_buffer = BtbPrefetchBuffer::new(config.btb_prefetch_buffer_entries);
        let predictor = predictor.build(config.predictor_budget_bytes);
        let ras = ReturnAddressStack::new(config.ras_entries as usize);
        let ftq = Ftq::new(config.ftq_entries);
        let backend = BackEnd::new(&config, layout.profile().backend, layout.profile().seed);
        Simulator {
            config,
            layout,
            trace,
            mechanism,
            hierarchy,
            btb,
            btb_prefetch_buffer,
            predictor,
            ras,
            ftq,
            backend,
            now: 0,
            stats: SimStats::default(),
            stepped_cycles: 0,
            trickled_cycles: 0,
            bulk_fetched_cycles: 0,
            bpu_index: 0,
            committed_blocks: 0,
            bpu_busy_until: 0,
            bpu_stalled_until: 0,
            bpu_waiting_for_squash: false,
            next_reached: Reached::Sequential,
            wrong_path: None,
            fetch: None,
            last_fetched_line: None,
            warmup_blocks: 0,
            warmup_done: true,
            max_cycles: u64::MAX,
        }
    }

    /// The mechanism's display name.
    pub fn mechanism_name(&self) -> &'static str {
        self.mechanism.name()
    }

    /// Installs a precomputed back-end latency-class stream (see
    /// [`workloads::BackendProfile::latency_classes`]) generated from this
    /// simulator's workload profile and seed. Purely an optimisation: the
    /// stream holds exactly the values the back end would draw online, so
    /// statistics are byte-identical with or without it. Call before
    /// running.
    pub fn use_backend_latency_classes(&mut self, classes: &'a [u8]) {
        self.backend.use_latency_classes(classes);
    }

    /// Runs the whole trace and returns the collected statistics.
    pub fn run(&mut self) -> SimStats {
        self.run_with_warmup(0)
    }

    /// Generous safety bound: no workload needs more than ~200 cycles per
    /// instruction even with a cold, prefetch-free front end.
    fn cycle_bound(&self) -> u64 {
        500 + 200
            * self
                .trace
                .iter()
                .map(DynamicBlock::instructions)
                .sum::<u64>()
    }

    /// Runs the whole trace, resetting statistics after the first
    /// `warmup_blocks` committed blocks so that cold-start effects (empty
    /// caches, empty BTB, untrained predictor) do not dominate the results.
    ///
    /// This is the *event-horizon* engine: instead of burning one [`step`]
    /// per cycle, it computes the next cycle at which any unit can do real
    /// work — wrong-path resolution, an L1-I fill completing, the BPU's
    /// busy/stall timers, the ROB head completing, a pending mechanism
    /// prefetch becoming ready — and bulk-advances over the dead cycles in
    /// between, incrementing the per-cycle stall counters in closed form.
    /// Two batched window kinds extend the same idea to cycles that are not
    /// dead but whose per-cycle behaviour is provably uniform: L1-I
    /// fill-stall windows ([`trickle_fill_stall`](Self::trickle_fill_stall))
    /// and block-granular streaming windows
    /// ([`stream_fast_forward`](Self::stream_fast_forward)), which solve the
    /// fetch/retire recurrence between two control-flow event points in one
    /// [`BackEnd::stream_window`] call. The resulting [`SimStats`] are
    /// bit-identical to
    /// [`run_with_warmup_reference`](Self::run_with_warmup_reference), which
    /// retains the per-cycle loop as the differential-testing oracle.
    ///
    /// [`step`]: Self::step
    pub fn run_with_warmup(&mut self, warmup_blocks: usize) -> SimStats {
        self.begin_run(warmup_blocks);
        self.advance_to_block(usize::MAX);
        self.finish_run()
    }

    /// Arms a resumable event-horizon run (see
    /// [`run_with_warmup`](Self::run_with_warmup)): records the warmup
    /// boundary and the cycle safety bound, then lets the caller drive the
    /// run in slices with [`advance_to_block`](Self::advance_to_block) and
    /// collect the result with [`finish_run`](Self::finish_run).
    ///
    /// This split exists for the lane-batched engine: a scheduler can
    /// round-robin many simulators over the same shared trace, pausing each
    /// at block-count targets. Pausing is transition-invariant — every loop
    /// iteration of the engine is self-contained and commits at most one
    /// block — so any slicing of a run produces bit-identical statistics to
    /// an uninterrupted [`run_with_warmup`] call.
    pub fn begin_run(&mut self, warmup_blocks: usize) {
        debug_assert_eq!(self.now, 0, "begin_run on an already-started simulator");
        self.warmup_blocks = warmup_blocks;
        self.warmup_done = warmup_blocks == 0;
        self.max_cycles = self.cycle_bound();
    }

    /// Advances an armed run (see [`begin_run`](Self::begin_run)) until at
    /// least `target_blocks` blocks have committed, the trace is exhausted,
    /// or the cycle safety bound trips. Returns `true` once the run is
    /// complete and [`finish_run`](Self::finish_run) may be called.
    pub fn advance_to_block(&mut self, target_blocks: usize) -> bool {
        let total = self.trace.len();
        let stop = target_blocks.min(total);
        while self.committed_blocks < stop && self.now < self.max_cycles {
            if let Some(horizon) = self.idle_horizon() {
                // Dead cycles never commit a block, so a bulk advance can
                // never cross the warmup boundary.
                self.advance_idle(horizon.min(self.max_cycles));
            } else if let Some(stall_end) = self.fill_stall_window() {
                // BPU-only cycles of an L1-I/LLC fill stall: batched, with
                // the per-cycle stall accounting done in closed form. Like
                // bulk-advanced windows, these cycles never commit a block,
                // so the batch can never cross the warmup boundary.
                self.trickle_fill_stall(stall_end.min(self.max_cycles));
            } else if let Some((instructions, until)) = self.streaming_window() {
                // Straight-line streaming out of an already-accessed L1-hit
                // line with every other unit silent: the whole drain window
                // is solved in one closed-form `BackEnd::stream_window`
                // call, and the line transition or block commit that ends
                // it runs at its exact cycle. Can commit (one block, in its
                // final cycle), so the warmup boundary is re-checked.
                let until = until.min(self.max_cycles);
                self.stream_fast_forward(instructions, until);
                self.check_warmup_boundary();
            } else {
                self.step();
                self.check_warmup_boundary();
            }
        }
        self.committed_blocks >= total || self.now >= self.max_cycles
    }

    /// Finalises an armed run and returns the collected statistics.
    pub fn finish_run(&mut self) -> SimStats {
        self.finalize_stats();
        self.stats
    }

    /// Number of trace blocks committed so far.
    pub fn committed_blocks(&self) -> usize {
        self.committed_blocks
    }

    /// Total number of blocks in the decoded trace.
    pub fn trace_blocks(&self) -> usize {
        self.trace.len()
    }

    /// The shared immutable decoded trace this simulator reads. Used by the
    /// lane-batched engine to assert that every lane of a group consumes the
    /// *same* trace stream (the shared-trace-cursor invariant).
    pub(crate) fn trace_stream(&self) -> &'a [DynamicBlock] {
        self.trace
    }

    #[inline]
    fn check_warmup_boundary(&mut self) {
        if !self.warmup_done && self.committed_blocks >= self.warmup_blocks {
            self.reset_stats();
            self.warmup_done = true;
        }
    }

    /// If the current (non-idle) cycle sits inside an L1-I fill-stall window
    /// that [`trickle_fill_stall`](Self::trickle_fill_stall) can batch —
    /// fetch stalled on a fill, no wrong-path episode in flight — returns
    /// the window's end (the fill's completion cycle).
    fn fill_stall_window(&self) -> Option<u64> {
        match &self.fetch {
            Some(f) if self.now < f.busy_until && self.wrong_path.is_none() => Some(f.busy_until),
            _ => None,
        }
    }

    /// Runs the cycles `[now, end)` of a fill-stall window as one batch.
    ///
    /// While the fetch engine waits on an L1-I fill, the only units doing
    /// real work are the BPU (one FTQ push per cycle while it is awake) and
    /// the mechanism's tick (pending prefetch probes); the reference stepper
    /// burns a full engine dispatch on each of those cycles anyway. This
    /// batch replaces that with:
    ///
    /// * **closed-form accounting** of the per-cycle state the window is
    ///   provably committed to: `fetch_stall_cycles`/`miss_breakdown` (the
    ///   stalled fetch's charge category cannot change mid-fill),
    ///   `stats.cycles`, and in-order retirement via
    ///   [`BackEnd::retire_span`] (the ROB is untouched by BPU and tick);
    /// * a **tight loop** over just the BPU-production and tick cycles,
    ///   jumping over cycles where the BPU sleeps on its busy/stall timers
    ///   and no tick is due — with no per-cycle `idle_horizon` dispatch, no
    ///   wrong-path/fetch re-checks, and no stat-counter branching.
    ///
    /// Timestamps stay exact wherever they are observable: BTB-miss probes
    /// and BPU timers use each production's true cycle, and ticks issue
    /// their probes at their true cycles. `on_ftq_push` alone observes the
    /// window's first cycle for the whole batch, which the
    /// [`ControlFlowMechanism::on_ftq_push`] timestamp-invariance contract
    /// (property-tested for every mechanism) makes unobservable.
    ///
    /// The preconditions are [`fill_stall_window`](Self::fill_stall_window)'s:
    /// a fetch stalled until at least `end` and no pending wrong path. Under
    /// them, no block can commit, the FTQ cannot drain, and no squash can
    /// resolve anywhere in the window, so the per-cycle loop below is
    /// observationally identical to `end - now` reference steps.
    fn trickle_fill_stall(&mut self, end: u64) {
        let start = self.now;
        debug_assert!(end > start && self.wrong_path.is_none());
        {
            let f = self
                .fetch
                .as_ref()
                .expect("a fill-stall batch requires a stalled fetch");
            debug_assert!(end <= f.busy_until);
            let span = end - start;
            Self::charge_fetch_stall(&mut self.stats, f, span);
            self.stats.cycles += span;
        }
        self.backend.retire_span(start, end);

        let mut t = start;
        while t < end {
            // Next cycle at which the BPU can produce, and next due tick.
            let bpu_at = match self.bpu_ready_at() {
                None => u64::MAX,
                Some(wake) => wake.max(t),
            };
            let tick_at = match self.mechanism.next_tick_event() {
                Some(at) => at.max(t),
                None => u64::MAX,
            };
            let next = bpu_at.min(tick_at);
            if next >= end {
                break; // only retirement happens in the remaining cycles
            }
            t = next;
            if bpu_at == t {
                self.bpu_produce(t, start);
            }
            // The reference steps the mechanism *after* the BPU each cycle,
            // so work queued by this cycle's push is eligible this cycle —
            // re-check the tick event after producing.
            if self.mechanism.next_tick_event().is_some_and(|at| at <= t) {
                self.mechanism_tick_at(t);
            }
            t += 1;
        }
        self.trickled_cycles += end - start;
        self.now = end;
    }

    /// If the current cycle opens a *streaming window* —
    /// [`stream_fast_forward`](Self::stream_fast_forward)'s preconditions —
    /// returns `(instructions, until)`: the number of instructions the fetch
    /// engine can deliver before the next line transition or block commit,
    /// and the (exclusive) cycle cap before which every other unit is
    /// provably silent.
    ///
    /// The preconditions, and why each cycle of the window is equivalent to
    /// a reference step:
    ///
    /// * **No wrong-path episode** — `handle_wrong_path` is a no-op, no
    ///   squash can fire, and no wrong-path prefetches issue. A commit at
    ///   the window's final cycle may *start* an episode, which the engine
    ///   then handles from the next cycle, exactly like the stepper.
    /// * **Fetch is mid-line**: a live fetch, not stalled, whose current
    ///   instruction sits in the line it already accessed
    ///   (`accessed_line`). Until the block's last instruction or the line
    ///   boundary — whichever is closer, and that is the returned
    ///   instruction count — `fetch_cycle` touches no hierarchy state and
    ///   no mechanism hook: it only moves instructions into the ROB at
    ///   `min(fetch_width, free_slots)` per cycle (the line-transition
    ///   event contract, see [`ControlFlowMechanism`]).
    /// * **The BPU cannot produce anywhere in the window.** Parked states
    ///   (waiting for a squash, FTQ full, trace exhausted) are static here:
    ///   a squash needs a wrong path, and the FTQ cannot drain because the
    ///   fetch engine only pops when idle, which it is not until the block
    ///   commits — at which point the window has already ended. Timer-parked
    ///   BPUs (busy/stalled-until) wake at an exact cycle, which caps the
    ///   window instead.
    /// * **No mechanism tick is due before the cap**: `next_tick_event`
    ///   bounds the window exactly as it bounds
    ///   [`idle_horizon`](Self::idle_horizon); no hook runs inside the
    ///   window that could schedule earlier work (the first hook to run is
    ///   the boundary cycle's own `on_demand_fetch`/`on_commit`, after
    ///   every tick position the window covered).
    ///
    /// The ROB is deliberately unconstrained: `BackEnd::stream_window`
    /// reproduces full-ROB back-pressure cycles (and their `rob_full`
    /// accounting) in closed form.
    fn streaming_window(&self) -> Option<(u64, u64)> {
        if self.wrong_path.is_some() {
            return None;
        }
        let f = self.fetch.as_ref()?;
        if self.now < f.busy_until || f.pos >= f.entry.instructions {
            return None;
        }
        let geometry = self.layout.geometry();
        let pc = f.entry.start.add_instructions(f.pos);
        if f.accessed_line != Some(geometry.line_of(pc)) {
            // The cycle opens with a demand access (a line-transition event
            // cycle): step it exactly.
            return None;
        }
        let instructions =
            (f.entry.instructions - f.pos).min(geometry.instructions_left_in_line(pc));

        let mut until = match self.bpu_ready_at() {
            None => u64::MAX,                              // parked for the whole window
            Some(wake) if wake <= self.now => return None, // the BPU produces this cycle
            Some(wake) => wake,
        };
        match self.mechanism.next_tick_event() {
            Some(t) if t <= self.now => return None, // a tick is due this cycle
            Some(t) => until = until.min(t),
            None => {}
        }
        debug_assert!(until > self.now);
        Some((instructions, until))
    }

    /// Fast-forwards a streaming window (see
    /// [`streaming_window`](Self::streaming_window)): the per-cycle
    /// retire/deliver recurrence is solved by one closed-form
    /// [`BackEnd::stream_window`] call, with `stats.cycles` and
    /// `rob_full_cycles` incremented in bulk. The window's event point stays
    /// exact: when the last instruction before the line/block boundary is
    /// accepted at cycle `T < until`, the rest of cycle `T` — the next
    /// line's demand access (and `on_demand_fetch`), or the block commit
    /// (predictor update, BTB fill, `on_commit`, squash start) — runs via
    /// [`fetch_inner`](Self::fetch_inner) with the fetch budget the final
    /// push left over, exactly as the reference stepper's intra-cycle fetch
    /// loop would. If the cap is reached first, the window ends with the
    /// fetch mid-line and the engine resumes at `until`.
    fn stream_fast_forward(&mut self, instructions: u64, until: u64) {
        let from = self.now;
        let out = self
            .backend
            .stream_window(instructions, self.config.fetch_width, from, until);
        self.fetch
            .as_mut()
            .expect("a streaming window requires an in-flight fetch")
            .pos += out.accepted;
        self.stats.rob_full_cycles += out.rob_full_cycles;
        if out.finished {
            let boundary = out.end_cycle;
            self.now = boundary;
            self.stats.cycles += boundary - from + 1;
            self.bulk_fetched_cycles += boundary - from + 1;
            self.fetch_inner(out.leftover_budget);
            self.now = boundary + 1;
        } else {
            self.stats.cycles += until - from;
            self.bulk_fetched_cycles += until - from;
            self.now = until;
        }
    }

    /// Runs with an explicit engine choice (the benchmark harness times both
    /// engines on identical work).
    pub fn run_with_warmup_engine(&mut self, warmup_blocks: usize, engine: SimEngine) -> SimStats {
        match engine {
            SimEngine::EventHorizon => self.run_with_warmup(warmup_blocks),
            SimEngine::PerCycleReference => self.run_with_warmup_reference(warmup_blocks),
        }
    }

    /// The retained per-cycle reference engine: semantically the definition
    /// of the simulator, kept as the oracle the event-horizon engine is
    /// differentially tested (and benchmarked) against.
    pub fn run_with_warmup_reference(&mut self, warmup_blocks: usize) -> SimStats {
        let total = self.trace.len();
        let mut warmup_done = warmup_blocks == 0;
        let max_cycles = self.cycle_bound();
        while self.committed_blocks < total && self.now < max_cycles {
            self.step();
            if !warmup_done && self.committed_blocks >= warmup_blocks {
                self.reset_stats();
                warmup_done = true;
            }
        }
        self.finalize_stats();
        self.stats
    }

    /// If the current cycle (and possibly a run of following cycles) is
    /// provably dead — no unit can change any state beyond stall counters and
    /// in-order retirement — returns the first cycle at which something can
    /// happen again. Returns `None` when the current cycle must be stepped.
    fn idle_horizon(&self) -> Option<u64> {
        let mut horizon = u64::MAX;

        // Checks are ordered to reject the common *active* cases with the
        // cheapest comparisons; the virtual mechanism call comes last, only
        // once every non-virtual check already found the cycle dead.

        // Fetch engine.
        match &self.fetch {
            Some(f) => {
                if self.now < f.busy_until {
                    // Stalled on an L1-I fill until `busy_until`.
                    horizon = f.busy_until;
                } else {
                    // Ready to fetch: only a full ROB keeps the cycle dead,
                    // and only until the ROB head completes. (`step` retires
                    // before fetching, so a head completing *at* a cycle
                    // unblocks that same cycle.)
                    if !self.backend.is_full() {
                        return None;
                    }
                    match self.backend.next_completion() {
                        Some(ready) if ready > self.now => horizon = ready,
                        _ => return None,
                    }
                }
            }
            None => {
                // An idle fetch engine pops the FTQ the same cycle the BPU
                // pushes, so an empty FTQ stays empty for the whole window.
                if !self.ftq.is_empty() {
                    return None;
                }
            }
        }

        // BPU: parked states (waiting for a squash, FTQ full, trace
        // exhausted — plus an in-flight wrong path, accounted below) only
        // end through events accounted elsewhere or through fetch activity,
        // which is never skipped; timer states end at the later of the two
        // busy/stall timers.
        if self.wrong_path.is_none() {
            if let Some(wake) = self.bpu_ready_at() {
                if wake <= self.now {
                    return None;
                }
                horizon = horizon.min(wake);
            }
        }

        // Wrong-path episode: the squash fires at `resolve_at`; until then,
        // fetch-directed mechanisms prefetch one wrong-path line per cycle
        // while their budget lasts.
        if let Some(wp) = self.wrong_path {
            if self.now >= wp.resolve_at {
                return None;
            }
            if self.mechanism.is_fetch_directed() && wp.lines_prefetched < WRONG_PATH_PREFETCH_LIMIT
            {
                return None;
            }
            horizon = horizon.min(wp.resolve_at);
        }

        // Mechanism tick: pending prefetch work wakes the mechanism.
        match self.mechanism.next_tick_event() {
            Some(t) if t <= self.now => return None,
            Some(t) => horizon = horizon.min(t),
            None => {}
        }

        (horizon > self.now).then_some(horizon)
    }

    /// The earliest cycle at which the BPU could produce, *ignoring any
    /// in-flight wrong path* (callers account for that separately, because
    /// only a squash — an event the engines never skip — ends it):
    ///
    /// * `None` — parked in a state only an external event can end: waiting
    ///   for a squash, FTQ full, or trace exhausted. None of these can
    ///   change while the fetch engine is busy with one block, which is
    ///   what lets the batched windows treat `None` as "silent throughout".
    /// * `Some(wake)` — free to produce from `wake` (the later of the
    ///   busy/stall timers; `wake <= now` means "can produce this cycle").
    ///
    /// This is the single definition of the BPU-readiness predicate shared
    /// by the per-cycle stepper ([`bpu_cycle`](Self::bpu_cycle)), the idle
    /// horizon, the batched fill-stall trickle and the streaming-window
    /// detector — it is correctness-critical that all four agree.
    fn bpu_ready_at(&self) -> Option<u64> {
        if self.bpu_waiting_for_squash || self.ftq.is_full() || self.bpu_index >= self.trace.len() {
            return None;
        }
        Some(self.bpu_busy_until.max(self.bpu_stalled_until))
    }

    /// Charges `span` fetch-stall cycles for the in-flight fetch `f`: the
    /// single definition of the stall-charge rule (the `Reached` category of
    /// the block's first instruction, `Sequential` past it) shared by the
    /// per-cycle stepper, the idle bulk-advance and the batched trickle.
    fn charge_fetch_stall(stats: &mut SimStats, f: &FetchState, span: u64) {
        let category = if f.pos == 0 {
            f.entry.reached
        } else {
            Reached::Sequential
        };
        stats.fetch_stall_cycles += span;
        stats.miss_breakdown.add(category, span);
    }

    /// Bulk-advances `now` to `horizon` across a window of dead cycles,
    /// applying exactly the state changes the per-cycle loop would have:
    /// stall counters in closed form and in-order retirement.
    fn advance_idle(&mut self, horizon: u64) {
        debug_assert!(horizon > self.now);
        let span = horizon - self.now;
        match &self.fetch {
            Some(f) if self.now < f.busy_until => {
                debug_assert!(horizon <= f.busy_until);
                Self::charge_fetch_stall(&mut self.stats, f, span);
            }
            Some(_) => {
                // Dead with a ready fetch only ever means a full ROB.
                self.stats.rob_full_cycles += span;
            }
            None => {
                if self.wrong_path.is_some() {
                    self.stats.squash_stall_cycles += span;
                } else if self.committed_blocks < self.trace.len() {
                    self.stats.ftq_empty_cycles += span;
                }
            }
        }
        self.backend.retire_span(self.now, horizon);
        self.now = horizon;
        self.stats.cycles += span;
    }

    /// Executes one cycle.
    pub fn step(&mut self) {
        self.handle_wrong_path();
        self.backend.retire(self.now);
        self.bpu_cycle();
        self.mechanism_tick_at(self.now);
        self.fetch_cycle();
        self.now += 1;
        self.stats.cycles += 1;
        self.stepped_cycles += 1;
    }

    /// Cycles executed one-by-one (as opposed to bulk-skipped by the
    /// event-horizon engine); `stats().cycles - stepped_cycles()` is the
    /// number of dead cycles the engine jumped over.
    pub fn stepped_cycles(&self) -> u64 {
        self.stepped_cycles
    }

    /// Cycles covered by batched fill-stall trickle windows (diagnostic
    /// counterpart of [`stepped_cycles`](Self::stepped_cycles)).
    pub fn trickled_cycles(&self) -> u64 {
        self.trickled_cycles
    }

    /// Cycles covered by block-granular streaming fast-forward windows
    /// (diagnostic counterpart of [`stepped_cycles`](Self::stepped_cycles)
    /// and [`trickled_cycles`](Self::trickled_cycles)): the cycles on which
    /// the fetch/retire recurrence was solved in closed form by
    /// [`BackEnd::stream_window`] instead of being stepped.
    pub fn bulk_fetched_cycles(&self) -> u64 {
        self.bulk_fetched_cycles
    }

    /// Statistics collected so far (finalised copies are returned by `run`).
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Warmup reset: every statistic (including the cycle counter used for
    /// IPC) restarts from zero, while `now` keeps running monotonically so
    /// in-flight fill timestamps in the memory hierarchy stay valid.
    ///
    /// The event-horizon engine preserves these semantics because a reset
    /// can only trigger when a block commits, and every window kind accounts
    /// for commits: dead-cycle bulk advances and fill-stall trickles never
    /// commit (so they can never straddle the warmup boundary), while a
    /// streaming window commits at most one block, in its final cycle —
    /// which is why the run loop re-checks the warmup boundary after
    /// `stream_fast_forward` exactly as it does after `step`. Any new
    /// batched-window kind that can commit must do the same.
    fn reset_stats(&mut self) {
        self.stats = SimStats::default();
    }

    fn finalize_stats(&mut self) {
        let h = self.hierarchy.stats();
        self.stats.prefetch_buffer_hits = h.prefetch_buffer_hits;
        self.stats.prefetches_issued = h.prefetches_issued;
    }

    #[allow(clippy::too_many_arguments)]
    fn with_ctx<R>(
        config: &MicroarchConfig,
        layout: &'a CodeLayout,
        hierarchy: &mut InstructionHierarchy,
        btb: &mut BasicBlockBtb,
        btb_prefetch_buffer: &mut BtbPrefetchBuffer,
        now: u64,
        mechanism: &mut M,
        f: impl FnOnce(&mut M, &mut MechContext<'_>) -> R,
    ) -> R {
        let mut ctx = MechContext {
            now,
            config,
            layout,
            hierarchy,
            btb,
            btb_prefetch_buffer,
        };
        f(mechanism, &mut ctx)
    }

    fn mechanism_tick_at(&mut self, now: u64) {
        Self::with_ctx(
            &self.config,
            self.layout,
            &mut self.hierarchy,
            &mut self.btb,
            &mut self.btb_prefetch_buffer,
            now,
            self.mechanism.as_mut(),
            |m, ctx| m.tick(ctx),
        );
    }

    /// Handles a pending wrong-path episode: prefetches along the wrong path
    /// while the mispredicted branch resolves, then squashes.
    fn handle_wrong_path(&mut self) {
        let Some(mut wp) = self.wrong_path else {
            return;
        };
        if self.now >= wp.resolve_at {
            // Squash: flush the FTQ and any in-flight fetch, charge the
            // refill bubble, and resume the BPU on the correct path.
            self.ftq.clear();
            self.fetch = None;
            self.stats.squashes.record(wp.cause);
            self.bpu_waiting_for_squash = false;
            self.bpu_busy_until = self.now + self.config.squash_penalty;
            let cause = wp.cause;
            Self::with_ctx(
                &self.config,
                self.layout,
                &mut self.hierarchy,
                &mut self.btb,
                &mut self.btb_prefetch_buffer,
                self.now,
                self.mechanism.as_mut(),
                |m, ctx| m.on_squash(cause, ctx),
            );
            self.wrong_path = None;
            return;
        }
        // Wrong-path prefetching: fetch-directed mechanisms keep walking the
        // (wrong) sequential path, which sometimes prefetches blocks on the
        // eventually-correct path (§VI-B).
        if self.mechanism.is_fetch_directed() && wp.lines_prefetched < WRONG_PATH_PREFETCH_LIMIT {
            let line = wp.next_prefetch_line;
            self.hierarchy.prefetch_probe(line, self.now);
            wp.next_prefetch_line = line.next();
            wp.lines_prefetched += 1;
            self.wrong_path = Some(wp);
        }
    }

    /// One branch-prediction-unit cycle: predict one basic block and push it
    /// into the FTQ.
    fn bpu_cycle(&mut self) {
        if self.wrong_path.is_some() || self.bpu_ready_at().is_none_or(|wake| self.now < wake) {
            return;
        }
        self.bpu_produce(self.now, self.now);
    }

    /// The BPU's production step, with the guards of [`bpu_cycle`] already
    /// established by the caller: predict one basic block and push it into
    /// the FTQ.
    ///
    /// `now` is the cycle the step executes at; `push_now` is the timestamp
    /// the mechanism's `on_ftq_push` hook observes. The two only differ
    /// inside [`trickle_fill_stall`](Self::trickle_fill_stall), which anchors
    /// `push_now` at the stall window's first cycle for the whole batch — a
    /// coarsening the [`ControlFlowMechanism::on_ftq_push`]
    /// timestamp-invariance contract makes unobservable. Everything
    /// timestamp-*dependent* (the BTB-miss probe, the BPU's busy/stall
    /// timers) uses the exact `now`.
    ///
    /// [`bpu_cycle`]: Self::bpu_cycle
    fn bpu_produce(&mut self, now: u64, push_now: u64) {
        let block = &self.trace[self.bpu_index];
        let start = block.start();
        let terminator = block
            .block
            .terminator
            .expect("trace blocks always carry a terminator");
        self.stats.btb_lookups += 1;

        // BTB lookup, with the BTB prefetch buffer probed in parallel.
        let mut lookup = self.btb.lookup(start).entry();
        if lookup.is_none() {
            if let Some(entry) = self.btb_prefetch_buffer.take(start) {
                self.btb.insert(entry);
                lookup = Some(entry);
            }
        }
        if lookup.is_none() && self.config.perfect.perfect_btb {
            let entry = BtbEntry::from_block(start, block.instructions(), terminator);
            self.btb.insert(entry);
            lookup = Some(entry);
        }

        let reached = self.next_reached;
        let (mispredicted, sequential_guess) = match lookup {
            Some(entry) => (self.predict_with_entry(block, terminator, entry), false),
            None => {
                self.stats.btb_misses += 1;
                let action = Self::with_ctx(
                    &self.config,
                    self.layout,
                    &mut self.hierarchy,
                    &mut self.btb,
                    &mut self.btb_prefetch_buffer,
                    now,
                    self.mechanism.as_mut(),
                    |m, ctx| m.on_btb_miss(start, ctx),
                );
                match action {
                    BtbMissAction::StallUntil { ready_at } => {
                        // Boomerang: halt FTQ filling until the prefill lands,
                        // then retry the same block (which will now hit).
                        self.bpu_stalled_until = ready_at.max(now + 1);
                        return;
                    }
                    BtbMissAction::ContinueSequential => {
                        // FDIP: the BPU walks sequentially one instruction per
                        // cycle until the next BTB hit; charge that time.
                        self.bpu_busy_until = now + block.instructions();
                        let cause = block.outcome.taken.then_some(SquashCause::BtbMiss);
                        (cause, true)
                    }
                }
            }
        };

        let entry = FtqEntry {
            oracle_index: self.bpu_index,
            start,
            instructions: block.instructions(),
            reached,
            mispredicted,
            sequential_guess,
        };
        self.ftq.push(entry);
        Self::with_ctx(
            &self.config,
            self.layout,
            &mut self.hierarchy,
            &mut self.btb,
            &mut self.btb_prefetch_buffer,
            push_now,
            self.mechanism.as_mut(),
            |m, ctx| m.on_ftq_push(&entry, ctx),
        );

        // Maintain the speculative RAS along the (oracle) path.
        if terminator.kind.is_call() && block.outcome.taken {
            self.ras.push(block.block.fall_through());
        }

        self.next_reached = if !block.outcome.taken {
            Reached::Sequential
        } else if terminator.kind == BranchKind::Conditional {
            Reached::ConditionalTaken
        } else {
            Reached::UnconditionalTaken
        };
        self.bpu_index += 1;
        if mispredicted.is_some() {
            // The BPU is now on the wrong path; it stops producing useful
            // entries until the squash resolves.
            self.bpu_waiting_for_squash = true;
        }
    }

    /// Predicts the successor of `block` using a BTB entry; returns the
    /// squash cause if the prediction turns out wrong.
    fn predict_with_entry(
        &mut self,
        block: &DynamicBlock,
        terminator: sim_core::BranchInfo,
        entry: BtbEntry,
    ) -> Option<SquashCause> {
        let fall_through = block.block.fall_through();
        let actual_next = block.outcome.next_pc;
        let actual_taken = block.outcome.taken;
        let predicted_next: Addr = match terminator.kind {
            BranchKind::Conditional => {
                self.stats.conditional_predictions += 1;
                let predicted_taken = self.predictor.predict(terminator.pc);
                if predicted_taken != actual_taken {
                    self.stats.conditional_mispredictions += 1;
                }
                if predicted_taken {
                    entry.target.unwrap_or(fall_through)
                } else {
                    fall_through
                }
            }
            BranchKind::Return => self.ras.pop().unwrap_or(fall_through),
            BranchKind::DirectJump | BranchKind::Call => entry.target.unwrap_or(fall_through),
            BranchKind::IndirectJump | BranchKind::IndirectCall => {
                entry.target.unwrap_or(fall_through)
            }
        };
        (predicted_next != actual_next).then_some(SquashCause::Misprediction)
    }

    /// One fetch-engine cycle.
    fn fetch_cycle(&mut self) {
        // Acquire a block to fetch if idle. The in-flight state is mutated
        // in place: moving the ~80-byte `FetchState` out of and back into
        // the `Option` every cycle was measurable on the hot path.
        if self.fetch.is_none() {
            match self.ftq.pop() {
                Some(entry) => {
                    self.fetch = Some(FetchState {
                        entry,
                        pos: 0,
                        busy_until: self.now,
                        accessed_line: None,
                    });
                }
                None => {
                    if self.wrong_path.is_some() {
                        self.stats.squash_stall_cycles += 1;
                    } else if self.committed_blocks < self.trace.len() {
                        self.stats.ftq_empty_cycles += 1;
                    }
                    return;
                }
            }
        }

        let fetch = self.fetch.as_mut().expect("fetch state was just ensured");

        // Stalled on an L1-I fill?
        if self.now < fetch.busy_until {
            Self::charge_fetch_stall(&mut self.stats, fetch, 1);
            return;
        }

        // Back-pressure from the ROB.
        if self.backend.is_full() {
            self.stats.rob_full_cycles += 1;
            return;
        }

        let budget = self
            .config
            .fetch_width
            .min(self.backend.free_slots() as u64);
        self.fetch_inner(budget);
    }

    /// The fetch engine's intra-cycle loop at the current cycle: line
    /// accesses and instruction delivery with `budget` slots, ending in a
    /// fill stall, exhausted budget, a filled ROB, or the block's commit.
    /// Shared by the per-cycle [`fetch_cycle`](Self::fetch_cycle) (which
    /// computes the cycle's full budget) and by
    /// [`stream_fast_forward`](Self::stream_fast_forward), which resumes the
    /// boundary cycle of a streaming window with the budget its final push
    /// left over.
    fn fetch_inner(&mut self, mut budget: u64) {
        let fetch = self
            .fetch
            .as_mut()
            .expect("the fetch engine's inner loop requires an in-flight fetch");
        let geometry = self.layout.geometry();
        while budget > 0 && fetch.pos < fetch.entry.instructions {
            let pc = fetch.entry.start.add_instructions(fetch.pos);
            let line = geometry.line_of(pc);
            if fetch.accessed_line != Some(line) {
                let outcome = self.hierarchy.demand_fetch(line, self.now);
                let missed = !matches!(outcome.level, HitLevel::L1 | HitLevel::PrefetchBuffer);
                let previous = self.last_fetched_line;
                Self::with_ctx(
                    &self.config,
                    self.layout,
                    &mut self.hierarchy,
                    &mut self.btb,
                    &mut self.btb_prefetch_buffer,
                    self.now,
                    self.mechanism.as_mut(),
                    |m, ctx| m.on_demand_fetch(line, previous, missed, ctx),
                );
                fetch.accessed_line = Some(line);
                self.last_fetched_line = Some(line);
                if missed {
                    fetch.busy_until = self.now + outcome.latency;
                    return;
                }
            }
            // Burst every instruction the current line can still supply:
            // one `push_instructions` call draws the same per-instruction
            // latencies as single pushes would, without per-instruction loop
            // and tag-check overhead.
            let chunk = budget
                .min(fetch.entry.instructions - fetch.pos)
                .min(geometry.instructions_left_in_line(pc));
            let accepted = self.backend.push_instructions(chunk, self.now);
            fetch.pos += accepted;
            budget -= accepted;
            if accepted < chunk {
                return;
            }
        }

        if fetch.pos >= fetch.entry.instructions {
            let entry = fetch.entry;
            self.fetch = None;
            self.commit_block(entry);
        }
    }

    /// Commits a fully fetched correct-path block: trains the predictor,
    /// fills the BTB, notifies the mechanism, and starts the wrong-path
    /// episode if the BPU mispredicted this block's successor.
    fn commit_block(&mut self, entry: FtqEntry) {
        let block = &self.trace[entry.oracle_index];
        let terminator = block
            .block
            .terminator
            .expect("trace blocks always carry a terminator");
        self.stats.instructions += block.instructions();
        self.committed_blocks += 1;

        if terminator.kind == BranchKind::Conditional {
            self.predictor.update(terminator.pc, block.outcome.taken);
        }

        // Demand BTB fill at branch resolution: the entry reflects the actual
        // executed block, with indirect branches remembering their last
        // target.
        let mut btb_entry = BtbEntry::from_block(block.start(), block.instructions(), terminator);
        if btb_entry.target.is_none() && block.outcome.taken {
            btb_entry.target = Some(block.outcome.next_pc);
        }
        self.btb.insert(btb_entry);

        Self::with_ctx(
            &self.config,
            self.layout,
            &mut self.hierarchy,
            &mut self.btb,
            &mut self.btb_prefetch_buffer,
            self.now,
            self.mechanism.as_mut(),
            |m, ctx| m.on_commit(block, ctx),
        );

        if let Some(cause) = entry.mispredicted {
            let wrong_start = block.block.fall_through();
            self.wrong_path = Some(WrongPath {
                resolve_at: self.now + self.config.branch_resolution_latency,
                cause,
                next_prefetch_line: self.layout.geometry().line_of(wrong_start),
                lines_prefetched: 0,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::NoPrefetch;
    use sim_core::PerfectComponents;
    use workloads::{Trace, WorkloadProfile};

    fn setup() -> (CodeLayout, Trace) {
        let layout = CodeLayout::generate(&WorkloadProfile::tiny(77));
        let trace = Trace::generate_blocks(&layout, 20_000);
        (layout, trace)
    }

    fn run(config: MicroarchConfig, layout: &CodeLayout, trace: &Trace) -> SimStats {
        let mut sim = Simulator::new(config, layout, trace.blocks(), Box::new(NoPrefetch::new()));
        sim.run_with_warmup(2_000)
    }

    #[test]
    fn baseline_run_is_sane() {
        let (layout, trace) = setup();
        let stats = run(MicroarchConfig::hpca17(), &layout, &trace);
        assert!(
            stats.instructions > 50_000,
            "instructions {}",
            stats.instructions
        );
        assert!(
            stats.cycles > stats.instructions / 3,
            "cycles {}",
            stats.cycles
        );
        let ipc = stats.ipc();
        assert!(ipc > 0.1 && ipc <= 3.0, "implausible IPC {ipc}");
        assert!(
            stats.fetch_stall_cycles > 0,
            "a cold 32KB L1-I must stall sometimes"
        );
        assert!(stats.squashes.total() > 0);
        assert!(stats.btb_lookups > 0);
        assert!(stats.miss_breakdown.total() == stats.fetch_stall_cycles);
    }

    #[test]
    fn event_horizon_matches_per_cycle_reference() {
        let (layout, trace) = setup();
        for config in [
            MicroarchConfig::hpca17(),
            MicroarchConfig::hpca17().with_btb_entries(256),
            MicroarchConfig::hpca17().with_noc(sim_core::NocModel::Fixed(70)),
        ] {
            let fast = run(config.clone(), &layout, &trace);
            let slow = Simulator::new(config, &layout, trace.blocks(), Box::new(NoPrefetch::new()))
                .run_with_warmup_reference(2_000);
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn streaming_windows_cover_a_meaningful_share_of_cycles() {
        // Every simulated cycle is handled exactly once: stepped, batched by
        // the fill-stall trickle, batched by the streaming fast-forward, or
        // bulk-advanced as dead. The streaming fast-forward must actually
        // fire on an ordinary workload (it covers the straight-line fetch
        // cycles the other windows cannot).
        let (layout, trace) = setup();
        let mut sim = Simulator::new(
            MicroarchConfig::hpca17(),
            &layout,
            trace.blocks(),
            Box::new(NoPrefetch::new()),
        );
        let stats = sim.run_with_warmup(0);
        let stepped = sim.stepped_cycles();
        let trickled = sim.trickled_cycles();
        let bulk = sim.bulk_fetched_cycles();
        assert!(
            stepped + trickled + bulk <= stats.cycles,
            "window accounting exceeds total cycles"
        );
        assert!(
            bulk > stats.cycles / 20,
            "streaming windows covered only {bulk} of {} cycles",
            stats.cycles
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let (layout, trace) = setup();
        let a = run(MicroarchConfig::hpca17(), &layout, &trace);
        let b = run(MicroarchConfig::hpca17(), &layout, &trace);
        assert_eq!(a, b);
    }

    #[test]
    fn perfect_l1i_removes_fetch_stalls_and_improves_performance() {
        let (layout, trace) = setup();
        let base = run(MicroarchConfig::hpca17(), &layout, &trace);
        let perfect = run(
            MicroarchConfig::hpca17().with_perfect(PerfectComponents::l1i()),
            &layout,
            &trace,
        );
        assert_eq!(perfect.fetch_stall_cycles, 0);
        assert!(perfect.cycles < base.cycles);
        assert!(perfect.speedup_vs(&base) > 1.0);
    }

    #[test]
    fn perfect_btb_eliminates_btb_miss_squashes() {
        let (layout, trace) = setup();
        let base = run(MicroarchConfig::hpca17(), &layout, &trace);
        let perfect = run(
            MicroarchConfig::hpca17().with_perfect(PerfectComponents::l1i_and_btb()),
            &layout,
            &trace,
        );
        assert!(
            base.squashes.btb_miss > 0,
            "baseline must suffer BTB-miss squashes"
        );
        assert_eq!(perfect.squashes.btb_miss, 0);
        assert!(perfect.cycles <= base.cycles);
    }

    #[test]
    fn bigger_btb_reduces_btb_miss_squashes() {
        let (layout, trace) = setup();
        let small = run(
            MicroarchConfig::hpca17().with_btb_entries(256),
            &layout,
            &trace,
        );
        let large = run(
            MicroarchConfig::hpca17().with_btb_entries(32 * 1024),
            &layout,
            &trace,
        );
        assert!(
            large.squashes.btb_miss < small.squashes.btb_miss,
            "32K-entry BTB ({}) must squash less than 256-entry ({})",
            large.squashes.btb_miss,
            small.squashes.btb_miss
        );
        assert!(large.cycles <= small.cycles);
    }

    #[test]
    fn higher_llc_latency_costs_cycles() {
        let (layout, trace) = setup();
        let fast = run(
            MicroarchConfig::hpca17().with_noc(sim_core::NocModel::Fixed(5)),
            &layout,
            &trace,
        );
        let slow = run(
            MicroarchConfig::hpca17().with_noc(sim_core::NocModel::Fixed(70)),
            &layout,
            &trace,
        );
        assert!(slow.cycles > fast.cycles);
        assert!(slow.fetch_stall_cycles > fast.fetch_stall_cycles);
    }

    #[test]
    fn stats_internal_consistency() {
        let (layout, trace) = setup();
        let stats = run(MicroarchConfig::hpca17(), &layout, &trace);
        assert!(stats.conditional_mispredictions <= stats.conditional_predictions);
        assert!(stats.btb_misses <= stats.btb_lookups);
        assert!(
            stats.squashes.total() * 5 < stats.instructions,
            "squash rate implausible"
        );
        // Misprediction rate with TAGE on these workloads should be modest.
        assert!(
            stats.misprediction_rate() < 0.2,
            "rate {}",
            stats.misprediction_rate()
        );
    }
}
