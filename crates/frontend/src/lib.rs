//! Cycle-level decoupled front-end simulator for the Boomerang reproduction.
//!
//! This crate is the substrate on which every control-flow-delivery mechanism
//! of the paper is evaluated. It models the front end of a 3-way out-of-order
//! core (Table I): a branch prediction unit (basic-block BTB + direction
//! predictor + return address stack), a fetch target queue, a fetch engine
//! talking to the L1-I hierarchy, a simplified out-of-order back end, and the
//! statistics the paper reports (front-end stall cycles and their breakdown,
//! squashes per kilo-instruction by cause, IPC).
//!
//! Mechanisms plug in through [`ControlFlowMechanism`]; the no-prefetch
//! baseline is [`NoPrefetch`].
//!
//! # Example
//!
//! ```
//! use frontend::{NoPrefetch, Simulator};
//! use sim_core::MicroarchConfig;
//! use workloads::{CodeLayout, Trace, WorkloadProfile};
//!
//! let layout = CodeLayout::generate(&WorkloadProfile::tiny(1));
//! let trace = Trace::generate_blocks(&layout, 3_000);
//! let mut sim = Simulator::new(
//!     MicroarchConfig::hpca17(),
//!     &layout,
//!     trace.blocks(),
//!     Box::new(NoPrefetch::new()),
//! );
//! let stats = sim.run();
//! assert!(stats.instructions > 0);
//! assert!(stats.ipc() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod backend;
pub mod ftq;
pub mod lane;
pub mod mechanism;
pub mod simulator;
pub mod stats;

pub use backend::BackEnd;
pub use ftq::{Ftq, FtqEntry, Reached, SquashCause};
pub use lane::LaneSimulator;
pub use mechanism::{
    predecode_line_iter, BtbMissAction, ControlFlowMechanism, MechContext, NoPrefetch,
};
pub use simulator::{SimEngine, Simulator};
pub use stats::{MissBreakdown, SimStats, SquashRates, SquashStats};
