//! A simplified out-of-order back end.
//!
//! The paper's contribution is entirely in the front end; the back end only
//! matters because its data stalls and finite ROB determine how much of the
//! front-end improvement turns into end-to-end speedup (Figures 1 and 9
//! saturate between 1.1x and 1.7x). This model captures exactly that:
//! instructions enter a finite ROB with a completion time drawn from the
//! workload's [`BackendProfile`](workloads::BackendProfile), retire in order
//! at the core's retire width, and exert back-pressure on fetch when the ROB
//! fills.

use sim_core::rng::SimRng;
use sim_core::{Latency, MicroarchConfig};
use workloads::BackendProfile;

/// A fixed ring buffer of in-order completion times: the retire loop runs
/// every simulated cycle, so the ROB avoids `VecDeque`'s growable-capacity
/// indexing in favour of a power-of-two ring sized once at construction.
#[derive(Clone, Debug)]
struct Rob {
    slots: Box<[u64]>,
    mask: usize,
    head: usize,
    len: usize,
}

impl Rob {
    fn with_capacity(capacity: usize) -> Self {
        let size = capacity.next_power_of_two().max(1);
        Rob {
            slots: vec![0; size].into_boxed_slice(),
            mask: size - 1,
            head: 0,
            len: 0,
        }
    }

    fn front(&self) -> Option<u64> {
        (self.len > 0).then(|| self.slots[self.head])
    }

    fn push_back(&mut self, ready_at: u64) {
        self.slots[(self.head + self.len) & self.mask] = ready_at;
        self.len += 1;
    }

    fn pop_front(&mut self) {
        debug_assert!(self.len > 0);
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
    }
}

/// Outcome of a [`BackEnd::stream_window`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamOutcome {
    /// Instructions accepted into the ROB over the window.
    pub accepted: u64,
    /// Cycles within the window on which the full ROB blocked fetch.
    pub rob_full_cycles: u64,
    /// `true` when all requested instructions were accepted before the
    /// window's cycle cap.
    pub finished: bool,
    /// The cycle the window ended at: the final instruction's push cycle
    /// when `finished`, the (exclusive) cap otherwise.
    pub end_cycle: u64,
    /// Fetch-width budget left unconsumed in `end_cycle` after the final
    /// push. Only meaningful when `finished`; the caller resumes the fetch
    /// engine's intra-cycle loop with it (a line transition or block commit
    /// happens in the same cycle when it is non-zero).
    pub leftover_budget: u64,
}

/// The simplified back end: a ROB of completion times with in-order retire.
#[derive(Clone, Debug)]
pub struct BackEnd<'a> {
    rob: Rob,
    capacity: usize,
    retire_width: u64,
    profile: BackendProfile,
    /// Precomputed per-instruction latency classes (see
    /// [`BackendProfile::latency_classes`]), shared by every run over the
    /// same workload. `None` falls back to drawing the identical cascade
    /// online from `rng`.
    latency_classes: Option<&'a [u8]>,
    class_cursor: usize,
    /// Class → latency map, indexed by `workloads::latency_class`.
    class_latencies: [Latency; 4],
    /// Integer Bernoulli thresholds precomputed from the profile's
    /// `load_fraction` / `llc_miss_rate` / `l1d_miss_rate`, so the
    /// per-instruction latency draw of [`exec_latency`](Self::exec_latency)
    /// is one raw draw and one compare per decision instead of a float
    /// conversion, clamp and compare — while consuming the *same* RNG stream
    /// (same number and order of `next_u64` calls) as the original
    /// `chance()` cascade, which keeps reports byte-identical.
    load_threshold: u64,
    llc_miss_threshold: u64,
    l1d_miss_threshold: u64,
    llc_latency: Latency,
    memory_latency: Latency,
    rng: SimRng,
    retired: u64,
}

impl<'a> BackEnd<'a> {
    /// Creates the back end for `config` and `profile`, seeded for
    /// reproducible data-stall patterns.
    pub fn new(config: &MicroarchConfig, profile: BackendProfile, seed: u64) -> Self {
        let llc_latency = config.llc_round_trip();
        let memory_latency = config.memory_latency();
        BackEnd {
            rob: Rob::with_capacity(config.rob_entries as usize),
            capacity: config.rob_entries as usize,
            retire_width: config.fetch_width,
            profile,
            latency_classes: None,
            class_cursor: 0,
            class_latencies: [
                profile.base_latency,
                memory_latency,
                llc_latency,
                profile.base_latency + 2,
            ],
            load_threshold: SimRng::chance_threshold(profile.load_fraction),
            llc_miss_threshold: SimRng::chance_threshold(profile.llc_miss_rate),
            l1d_miss_threshold: SimRng::chance_threshold(profile.l1d_miss_rate),
            llc_latency,
            memory_latency,
            rng: SimRng::seeded(seed ^ workloads::LATENCY_SEED_SALT),
            retired: 0,
        }
    }

    /// Switches the latency source to a precomputed class stream (see
    /// [`BackendProfile::latency_classes`], generated from the same
    /// `(profile, seed)` this back end was built with). Must be installed
    /// before the first instruction is accepted; every simulator run over a
    /// generated workload shares one stream instead of re-drawing the
    /// cascade per instruction.
    pub fn use_latency_classes(&mut self, classes: &'a [u8]) {
        debug_assert_eq!(self.retired, 0);
        debug_assert_eq!(self.rob.len, 0);
        self.latency_classes = Some(classes);
        self.class_cursor = 0;
    }

    /// Number of free ROB slots.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.rob.len
    }

    /// `true` when no more instructions can be accepted.
    pub fn is_full(&self) -> bool {
        self.rob.len >= self.capacity
    }

    /// Occupancy in instructions.
    pub fn occupancy(&self) -> usize {
        self.rob.len
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Execution latency of the next instruction, drawn from the workload's
    /// data-stall distribution.
    ///
    /// Each branch is one raw draw against a precomputed threshold,
    /// draw-for-draw equivalent to the original
    /// `chance(load_fraction)` / `chance(llc_miss_rate)` /
    /// `chance(l1d_miss_rate)` cascade (see
    /// [`SimRng::chance_threshold`]); the common non-memory path is a single
    /// compare-and-return.
    #[inline]
    fn exec_latency(&mut self) -> Latency {
        if self.rng.unit_bits() >= self.load_threshold {
            return self.profile.base_latency; // not a load: the common path
        }
        if self.rng.unit_bits() < self.llc_miss_threshold {
            return self.memory_latency;
        }
        if self.rng.unit_bits() < self.l1d_miss_threshold {
            return self.llc_latency;
        }
        self.profile.base_latency + 2 // L1-D hit
    }

    /// Accepts up to `count` fetched instructions at cycle `now`, limited by
    /// free ROB space. Returns how many were accepted.
    pub fn push_instructions(&mut self, count: u64, now: u64) -> u64 {
        let accepted = count.min(self.free_slots() as u64);
        if let Some(classes) = self.latency_classes {
            // Precomputed stream: one table-indexed load per instruction in
            // place of the Bernoulli cascade (byte-identical values).
            let chunk = &classes[self.class_cursor..self.class_cursor + accepted as usize];
            self.class_cursor += accepted as usize;
            for &class in chunk {
                self.rob
                    .push_back(now + self.class_latencies[class as usize]);
            }
        } else {
            for _ in 0..accepted {
                let latency = self.exec_latency();
                self.rob.push_back(now + latency);
            }
        }
        accepted
    }

    /// Completion time of the oldest in-flight instruction, if any. In-order
    /// retire means nothing leaves the ROB before this cycle.
    pub fn next_completion(&self) -> Option<u64> {
        self.rob.front()
    }

    /// Retires exactly as `for t in from..to { self.retire(t) }` would, but
    /// in O(instructions retired) instead of O(cycles): cycles where the ROB
    /// head has not completed retire nothing and are jumped over.
    pub fn retire_span(&mut self, from: u64, to: u64) {
        let mut cycle = from;
        while cycle < to {
            match self.rob.front() {
                Some(ready) if ready > cycle => {
                    if ready >= to {
                        break;
                    }
                    cycle = ready;
                }
                Some(_) => {}
                None => break,
            }
            let mut n = 0;
            while n < self.retire_width {
                match self.rob.front() {
                    Some(ready) if ready <= cycle => {
                        self.rob.pop_front();
                        n += 1;
                    }
                    _ => break,
                }
            }
            self.retired += n;
            cycle += 1;
        }
    }

    /// Solves a straight-line streaming window in one call: the companion of
    /// [`retire_span`](Self::retire_span) for cycles in which the fetch
    /// engine is delivering instructions.
    ///
    /// Semantically this is exactly the per-cycle recurrence the simulator's
    /// stepper runs while a block streams out of an already-accessed L1-hit
    /// line with every other unit silent — for each cycle `t` in
    /// `from..until`:
    ///
    /// 1. `retire(t)` — the ROB head drains at the retire width;
    /// 2. if the ROB is full, the cycle is a `rob_full` back-pressure cycle
    ///    and delivers nothing;
    /// 3. otherwise `min(fetch_width, free_slots)` instructions (capped by
    ///    what is left of the window) enter via
    ///    [`push_instructions`](Self::push_instructions).
    ///
    /// The closed-form win is twofold: full-ROB spans whose head has not
    /// completed are jumped in O(1) (their per-cycle effect is exactly one
    /// `rob_full` count each), and the remaining occupancy recurrence runs
    /// as a tight push/retire loop with no per-cycle engine dispatch. The
    /// RNG/latency-class stream is consumed draw-for-draw as the stepper
    /// would, so the resulting ROB state and statistics are byte-identical
    /// (property-tested against the cycle-by-cycle oracle).
    ///
    /// The window ends either when all `n_instr` instructions are accepted
    /// — `finished`, with the push cycle and the unconsumed fetch budget
    /// reported so the caller can run the same-cycle line transition or
    /// block commit — or when the cycle cap `until` is reached first.
    pub fn stream_window(
        &mut self,
        n_instr: u64,
        fetch_width: u64,
        from: u64,
        until: u64,
    ) -> StreamOutcome {
        debug_assert!(n_instr > 0, "an empty window has no event to solve");
        debug_assert!(from < until);
        let mut left = n_instr;
        let mut rob_full_cycles = 0u64;
        let mut t = from;
        while t < until {
            if self.is_full() {
                if let Some(ready) = self.rob.front() {
                    if ready > t {
                        // A full ROB whose head has not completed blocks
                        // fetch and retires nothing: every cycle up to the
                        // head's completion (or the cap) is one rob_full
                        // count, applied in closed form.
                        let skip_to = ready.min(until);
                        rob_full_cycles += skip_to - t;
                        t = skip_to;
                        continue;
                    }
                }
            }
            self.retire(t);
            if self.is_full() {
                rob_full_cycles += 1;
                t += 1;
                continue;
            }
            let budget = fetch_width.min(self.free_slots() as u64);
            let accepted = budget.min(left);
            self.push_instructions(accepted, t);
            left -= accepted;
            if left == 0 {
                return StreamOutcome {
                    accepted: n_instr,
                    rob_full_cycles,
                    finished: true,
                    end_cycle: t,
                    leftover_budget: budget - accepted,
                };
            }
            t += 1;
        }
        StreamOutcome {
            accepted: n_instr - left,
            rob_full_cycles,
            finished: false,
            end_cycle: until,
            leftover_budget: 0,
        }
    }

    /// Retires completed instructions in order, up to the retire width.
    /// Returns how many retired this cycle.
    pub fn retire(&mut self, now: u64) -> u64 {
        let mut n = 0;
        while n < self.retire_width {
            match self.rob.front() {
                Some(ready) if ready <= now => {
                    self.rob.pop_front();
                    n += 1;
                }
                _ => break,
            }
        }
        self.retired += n;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::WorkloadKind;

    fn backend() -> BackEnd<'static> {
        let cfg = MicroarchConfig::hpca17();
        BackEnd::new(&cfg, WorkloadKind::Nutch.profile().backend, 7)
    }

    #[test]
    fn rob_capacity_limits_acceptance() {
        let mut be = backend();
        assert_eq!(be.free_slots(), 128);
        let accepted = be.push_instructions(200, 0);
        assert_eq!(accepted, 128);
        assert!(be.is_full());
        assert_eq!(be.push_instructions(10, 0), 0);
    }

    #[test]
    fn in_order_retire_respects_width_and_latency() {
        let mut be = backend();
        be.push_instructions(10, 0);
        // Nothing retires at cycle 0 (latency >= 1).
        assert_eq!(be.retire(0), 0);
        // Eventually everything retires, at most 3 per cycle.
        let mut total = 0;
        for cycle in 1..10_000 {
            let r = be.retire(cycle);
            assert!(r <= 3);
            total += r;
            if total == 10 {
                break;
            }
        }
        assert_eq!(total, 10);
        assert_eq!(be.retired(), 10);
        assert_eq!(be.occupancy(), 0);
    }

    #[test]
    fn data_stalls_make_some_instructions_slow() {
        let mut be = backend();
        // Push many instructions; with Nutch's profile some must take the
        // LLC/memory path, so draining takes longer than count/width.
        be.push_instructions(128, 0);
        let mut cycles = 0;
        let mut retired = 0;
        while retired < 128 && cycles < 100_000 {
            cycles += 1;
            retired += be.retire(cycles);
        }
        assert_eq!(retired, 128);
        assert!(
            cycles > 128 / 3,
            "draining must take at least occupancy/width cycles, took {cycles}"
        );
    }

    #[test]
    fn retire_span_matches_per_cycle_retire() {
        let cfg = MicroarchConfig::hpca17();
        let profile = WorkloadKind::Oracle.profile().backend;
        let mut bulk = BackEnd::new(&cfg, profile, 9);
        let mut stepped = BackEnd::new(&cfg, profile, 9);
        bulk.push_instructions(100, 0);
        stepped.push_instructions(100, 0);
        let windows = [(0u64, 7u64), (7, 8), (8, 40), (40, 41), (41, 1000)];
        for &(from, to) in &windows {
            for t in from..to {
                stepped.retire(t);
            }
            bulk.retire_span(from, to);
            assert_eq!(bulk.occupancy(), stepped.occupancy(), "window {from}..{to}");
            assert_eq!(bulk.retired(), stepped.retired(), "window {from}..{to}");
            assert_eq!(bulk.next_completion(), stepped.next_completion());
        }
        assert_eq!(bulk.occupancy(), 0);
    }

    #[test]
    fn threshold_latency_draw_matches_the_chance_cascade() {
        // The integer-threshold exec_latency must be draw-for-draw identical
        // to the original `chance()` cascade: same latency outcomes from the
        // same number and order of underlying `next_u64` calls, for every
        // paper profile. Both RNGs must also end in the same stream position,
        // which the final range_u64 comparison witnesses.
        let cfg = MicroarchConfig::hpca17();
        for kind in workloads::WorkloadKind::ALL {
            let profile = kind.profile().backend;
            let mut be = BackEnd::new(&cfg, profile, 1234);
            let mut oracle = sim_core::rng::SimRng::seeded(1234 ^ 0xbac_bac_bac);
            let oracle_latency = |rng: &mut sim_core::rng::SimRng| -> Latency {
                if rng.chance(profile.load_fraction) {
                    if rng.chance(profile.llc_miss_rate) {
                        return cfg.memory_latency();
                    }
                    if rng.chance(profile.l1d_miss_rate) {
                        return cfg.llc_round_trip();
                    }
                    return profile.base_latency + 2;
                }
                profile.base_latency
            };
            for i in 0..20_000 {
                assert_eq!(
                    be.exec_latency(),
                    oracle_latency(&mut oracle),
                    "draw {i} diverged for {kind:?}"
                );
            }
            assert_eq!(
                be.rng.range_u64(0, u64::MAX),
                oracle.range_u64(0, u64::MAX),
                "stream positions diverged for {kind:?}"
            );
        }
    }

    #[test]
    fn latency_class_stream_matches_online_draws() {
        // A back end fed the precomputed class stream must accept and retire
        // instructions exactly like one drawing the cascade online.
        let cfg = MicroarchConfig::hpca17();
        for kind in workloads::WorkloadKind::ALL {
            let profile = kind.profile();
            // Slack beyond the 50K pushed below: the stream must simply be
            // at least as long as the number of accepted instructions.
            let classes = profile.backend.latency_classes(profile.seed, 50_100);
            let mut streamed = BackEnd::new(&cfg, profile.backend, profile.seed);
            streamed.use_latency_classes(&classes);
            let mut online = BackEnd::new(&cfg, profile.backend, profile.seed);
            let mut now = 0;
            let mut pushed = 0u64;
            while pushed < 50_000 {
                let a = streamed.push_instructions(7, now);
                let b = online.push_instructions(7, now);
                assert_eq!(a, b);
                pushed += a;
                now += 2;
                streamed.retire(now);
                online.retire(now);
                assert_eq!(streamed.next_completion(), online.next_completion());
                assert_eq!(streamed.retired(), online.retired(), "{kind:?} at {now}");
            }
        }
    }

    /// The cycle-by-cycle oracle `stream_window` must equal: one
    /// `retire`+`push_instructions` pair per cycle, stopping (mid-cycle,
    /// with the leftover budget) once the window's instructions are all
    /// accepted. Returns what `stream_window` reports so the two can be
    /// compared field-for-field.
    fn oracle_stream(
        be: &mut BackEnd<'_>,
        n_instr: u64,
        fetch_width: u64,
        from: u64,
        until: u64,
    ) -> StreamOutcome {
        let mut left = n_instr;
        let mut rob_full_cycles = 0;
        for t in from..until {
            be.retire(t);
            if be.is_full() {
                rob_full_cycles += 1;
                continue;
            }
            let budget = fetch_width.min(be.free_slots() as u64);
            let accepted = budget.min(left);
            be.push_instructions(accepted, t);
            left -= accepted;
            if left == 0 {
                return StreamOutcome {
                    accepted: n_instr,
                    rob_full_cycles,
                    finished: true,
                    end_cycle: t,
                    leftover_budget: budget - accepted,
                };
            }
        }
        StreamOutcome {
            accepted: n_instr - left,
            rob_full_cycles,
            finished: false,
            end_cycle: until,
            leftover_budget: 0,
        }
    }

    #[test]
    fn stream_window_matches_cycle_by_cycle_oracle_over_randomized_windows() {
        use sim_core::rng::SimRng;
        let mut rng = SimRng::seeded(0x57e4_11a6_0b00);
        let cfg = MicroarchConfig::hpca17();
        for round in 0..200 {
            let kind = workloads::WorkloadKind::ALL[rng.index(workloads::WorkloadKind::ALL.len())];
            let seed = rng.range_u64(0, 1 << 40);
            let mut bulk = BackEnd::new(&cfg, kind.profile().backend, seed);
            let mut oracle = BackEnd::new(&cfg, kind.profile().backend, seed);
            // Random pre-existing ROB state: a few pushes at earlier cycles,
            // partially retired, so windows start at every occupancy level.
            let mut t = 0;
            for _ in 0..rng.index(4) {
                let n = rng.range_u64(0, 140);
                bulk.push_instructions(n, t);
                oracle.push_instructions(n, t);
                let drained_to = t + rng.range_u64(1, 30);
                bulk.retire_span(t, drained_to);
                oracle.retire_span(t, drained_to);
                t = drained_to;
            }
            // A randomized window: sometimes instruction-bound (finished),
            // sometimes cap-bound, sometimes starting against a full ROB.
            let from = t + rng.range_u64(0, 5);
            let until = from + 1 + rng.range_u64(0, 400);
            let n_instr = 1 + rng.range_u64(0, 48);
            let fetch_width = 1 + rng.range_u64(0, 7);
            let got = bulk.stream_window(n_instr, fetch_width, from, until);
            let want = oracle_stream(&mut oracle, n_instr, fetch_width, from, until);
            assert_eq!(got, want, "round {round}: outcome diverged");
            assert_eq!(bulk.occupancy(), oracle.occupancy(), "round {round}");
            assert_eq!(bulk.retired(), oracle.retired(), "round {round}");
            assert_eq!(bulk.next_completion(), oracle.next_completion());
            // The RNG/latency streams must be in the same position: the next
            // pushes must produce identical completion times.
            let resume = until + 10;
            bulk.push_instructions(8, resume);
            oracle.push_instructions(8, resume);
            bulk.retire_span(resume, resume + 500);
            oracle.retire_span(resume, resume + 500);
            assert_eq!(
                bulk.retired(),
                oracle.retired(),
                "round {round}: stream position"
            );
            assert_eq!(bulk.next_completion(), oracle.next_completion());
        }
    }

    #[test]
    fn stream_window_reports_the_finishing_cycle_and_leftover_budget() {
        let cfg = MicroarchConfig::hpca17();
        let profile = WorkloadKind::Oracle.profile().backend;
        let mut be = BackEnd::new(&cfg, profile, 3);
        // Empty ROB, width 3: 7 instructions land 3/3/1 over cycles 10..12,
        // leaving 2 budget slots in the finishing cycle.
        let out = be.stream_window(7, 3, 10, 1000);
        assert!(out.finished);
        assert_eq!(out.accepted, 7);
        assert_eq!(out.end_cycle, 12);
        assert_eq!(out.leftover_budget, 2);
        assert_eq!(out.rob_full_cycles, 0);
        assert_eq!(be.occupancy(), 7);
    }

    #[test]
    fn stream_window_jumps_full_rob_spans_in_closed_form() {
        let cfg = MicroarchConfig::hpca17();
        let profile = WorkloadKind::Oracle.profile().backend;
        let mut bulk = BackEnd::new(&cfg, profile, 11);
        let mut oracle = BackEnd::new(&cfg, profile, 11);
        // Fill the ROB completely so the window starts back-pressured.
        bulk.push_instructions(128, 0);
        oracle.push_instructions(128, 0);
        let got = bulk.stream_window(40, 3, 0, 5_000);
        let want = oracle_stream(&mut oracle, 40, 3, 0, 5_000);
        assert_eq!(got, want);
        assert!(got.rob_full_cycles > 0, "a full ROB must block some cycles");
        assert_eq!(bulk.occupancy(), oracle.occupancy());
        assert_eq!(bulk.retired(), oracle.retired());
    }

    #[test]
    fn deterministic_for_a_seed() {
        let cfg = MicroarchConfig::hpca17();
        let profile = WorkloadKind::Db2.profile().backend;
        let mut a = BackEnd::new(&cfg, profile, 42);
        let mut b = BackEnd::new(&cfg, profile, 42);
        a.push_instructions(64, 0);
        b.push_instructions(64, 0);
        for cycle in 0..500 {
            assert_eq!(a.retire(cycle), b.retire(cycle));
        }
    }
}
