//! The naive "never taken" predictor of the Figure 2 ablation.

use crate::DirectionPredictor;
use sim_core::Addr;

/// Predicts every conditional branch as not taken.
///
/// Paired with FDIP this follows the fall-through path on every conditional
/// branch; the paper shows it still captures most of the prefetch coverage
/// because taken conditional branches rarely jump further than a few cache
/// blocks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NeverTaken;

impl NeverTaken {
    /// Creates the predictor.
    pub const fn new() -> Self {
        NeverTaken
    }
}

impl DirectionPredictor for NeverTaken {
    fn predict(&mut self, _pc: Addr) -> bool {
        false
    }

    fn update(&mut self, _pc: Addr, _taken: bool) {}

    fn storage_bits(&self) -> u64 {
        0
    }

    fn name(&self) -> &'static str {
        "never-taken"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_predicts_not_taken_and_ignores_updates() {
        let mut p = NeverTaken::new();
        for i in 0..32 {
            let pc = Addr::new(0x1000 + i * 4);
            assert!(!p.predict(pc));
            p.update(pc, true);
            assert!(!p.predict(pc));
        }
        assert_eq!(p.storage_bits(), 0);
        assert_eq!(p.name(), "never-taken");
    }
}
