//! Gshare: global-history XOR-indexed two-bit counters.
//!
//! Not evaluated by name in the paper, but a useful intermediate point
//! between the bimodal and TAGE predictors for the Figure 2 style ablation
//! and for the predictor micro-benchmarks.

use crate::DirectionPredictor;
use sim_core::Addr;

/// A gshare predictor: the global branch history register is XORed with the
/// branch PC to index a table of 2-bit saturating counters.
#[derive(Clone, Debug)]
pub struct Gshare {
    counters: Vec<u8>,
    history: u64,
    history_bits: u32,
    index_mask: u64,
}

impl Gshare {
    /// Creates a predictor with `entries` counters and `history_bits` of
    /// global history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `history_bits` exceeds 32.
    pub fn new(entries: usize, history_bits: u32) -> Self {
        assert!(
            entries.is_power_of_two(),
            "gshare table size must be a power of two"
        );
        assert!(history_bits <= 32, "history length capped at 32 bits");
        Gshare {
            counters: vec![1; entries],
            history: 0,
            history_bits,
            index_mask: entries as u64 - 1,
        }
    }

    /// Creates a predictor using roughly `budget_bytes` of storage.
    pub fn with_budget(budget_bytes: u64) -> Self {
        let entries = (budget_bytes * 4).next_power_of_two().max(1024) as usize;
        let history_bits = (entries.trailing_zeros()).min(16);
        Gshare::new(entries, history_bits)
    }

    /// Number of counters.
    pub fn entries(&self) -> usize {
        self.counters.len()
    }

    fn index(&self, pc: Addr) -> usize {
        let hist = self.history & ((1u64 << self.history_bits) - 1);
        (((pc.raw() >> 2) ^ hist) & self.index_mask) as usize
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&mut self, pc: Addr) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: Addr, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | u64::from(taken);
    }

    fn storage_bits(&self) -> u64 {
        self.counters.len() as u64 * 2 + u64::from(self.history_bits)
    }

    fn name(&self) -> &'static str {
        "gshare"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_history_correlated_patterns() {
        // Alternating taken/not-taken: bimodal oscillates, gshare learns it.
        let mut g = Gshare::new(4096, 8);
        let pc = Addr::new(0x8000);
        let mut correct = 0;
        let total = 200;
        for i in 0..total {
            let taken = i % 2 == 0;
            if g.predict(pc) == taken {
                correct += 1;
            }
            g.update(pc, taken);
        }
        assert!(
            correct > total * 3 / 4,
            "gshare should learn an alternating pattern, got {correct}/{total}"
        );
    }

    #[test]
    fn learns_biased_branches() {
        let mut g = Gshare::new(4096, 8);
        let pc = Addr::new(0x8000);
        for _ in 0..64 {
            g.update(pc, true);
        }
        assert!(g.predict(pc));
    }

    #[test]
    fn budget_sizing() {
        let g = Gshare::with_budget(8 * 1024);
        assert_eq!(g.entries(), 32768);
        assert!(g.storage_bits() >= 65536);
        assert_eq!(g.name(), "gshare");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_size() {
        let _ = Gshare::new(1000, 8);
    }

    #[test]
    #[should_panic(expected = "capped")]
    fn rejects_long_history() {
        let _ = Gshare::new(1024, 48);
    }
}
