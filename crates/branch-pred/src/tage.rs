//! TAGE: TAgged GEometric history length branch predictor (Seznec & Michaud).
//!
//! This is a faithful, compact implementation of the predictor the paper uses
//! (Table I: "TAGE, 8KB storage budget"): a bimodal base predictor plus a set
//! of partially tagged tables indexed with geometrically increasing global
//! history lengths. The longest-history matching table provides the
//! prediction; a `u`(seful) bit and the alternate prediction implement the
//! standard allocation and update policy.

use crate::DirectionPredictor;
use sim_core::Addr;

/// One entry of a tagged TAGE component.
#[derive(Clone, Copy, Debug, Default)]
struct TaggedEntry {
    tag: u16,
    /// 3-bit signed counter stored biased: 0..=7, taken if >= 4.
    ctr: u8,
    /// 2-bit usefulness counter.
    useful: u8,
}

/// One tagged component table.
#[derive(Clone, Debug)]
struct TaggedTable {
    entries: Vec<TaggedEntry>,
    history_length: u32,
    tag_bits: u32,
    index_mask: u64,
}

/// Upper bound on the number of tagged tables, sized so per-prediction
/// scratch arrays live on the stack.
const MAX_TAGGED_TABLES: usize = 8;

/// The per-table lookup coordinates of one PC under the current folded
/// histories: `(index, tag)` for every tagged table, computed in a single
/// pass so that the provider search, the update path and the allocation path
/// stop re-deriving them from scratch (the re-derivation used to be one of
/// the largest single slices of simulation time).
#[derive(Clone, Copy, Debug)]
struct TablePaths {
    idx: [u32; MAX_TAGGED_TABLES],
    tag: [u16; MAX_TAGGED_TABLES],
}

/// Folded-history helper: compresses an arbitrarily long global history into
/// `target_bits` by XOR-folding, updated incrementally.
///
/// The mask and both XOR positions are fixed for the life of the fold, so
/// they are precomputed at construction — `update` runs twice per tagged
/// table on every branch outcome, and the `original_length % target_bits`
/// division alone was a measurable slice of simulation time.
#[derive(Clone, Debug)]
struct FoldedHistory {
    folded: u64,
    mask: u64,
    /// Position the incoming bit is XOR-folded into (`target_bits - 1`).
    top_pos: u32,
    /// Position the evicted bit leaves from (`original_length % target_bits`).
    out_pos: u32,
}

impl FoldedHistory {
    fn new(original_length: u32, target_bits: u32) -> Self {
        let target_bits = target_bits.max(1);
        FoldedHistory {
            folded: 0,
            mask: (1u64 << target_bits) - 1,
            top_pos: (target_bits - 1).min(63),
            out_pos: original_length % target_bits,
        }
    }

    #[inline]
    fn update(&mut self, new_bit: bool, evicted_bit: bool) {
        // Shift in the new bit.
        self.folded = ((self.folded << 1) | u64::from(new_bit)) & self.mask;
        self.folded ^= u64::from(new_bit) << self.top_pos;
        // Remove the bit that fell off the end of the original history.
        self.folded ^= u64::from(evicted_bit) << self.out_pos;
        self.folded &= self.mask;
    }

    #[inline]
    fn value(&self) -> u64 {
        self.folded
    }
}

/// The TAGE predictor.
#[derive(Clone, Debug)]
pub struct Tage {
    /// Bimodal base predictor (2-bit counters).
    base: Vec<u8>,
    base_mask: u64,
    tables: Vec<TaggedTable>,
    /// Folded histories for index computation, one per tagged table.
    index_folds: Vec<FoldedHistory>,
    /// Folded histories for tag computation, one per tagged table.
    tag_folds: Vec<FoldedHistory>,
    /// Global history as a ring buffer: the logically `i`-th most recent bit
    /// lives at `history[(history_head + i) & history_mask]`, so pushing a
    /// bit moves the head instead of memmoving the whole register.
    history: Box<[bool]>,
    history_head: usize,
    history_mask: usize,
    max_history: u32,
    /// "use alternate on newly allocated" counter.
    use_alt_on_na: i8,
    /// Allocation tie-breaker.
    lfsr: u64,
}

impl Tage {
    /// Creates a TAGE predictor with an approximately `budget_bytes` storage
    /// budget, split between the bimodal base and the tagged tables.
    pub fn with_budget(budget_bytes: u64) -> Self {
        // Roughly half the budget to the base predictor, half to the tagged
        // tables, mirroring common TAGE configurations.
        let base_entries = ((budget_bytes * 8 / 2) / 2).next_power_of_two().max(1024);
        let num_tables = 6usize;
        assert!(num_tables <= MAX_TAGGED_TABLES);
        // Each tagged entry costs tag + 3-bit counter + 2-bit useful.
        let tag_bits = 9u32;
        let entry_bits = u64::from(tag_bits) + 3 + 2;
        let per_table_budget_bits = (budget_bytes * 8 / 2) / num_tables as u64;
        let table_entries = (per_table_budget_bits / entry_bits)
            .next_power_of_two()
            .max(256);

        let min_history = 4u32;
        let max_history = 128u32;
        let ratio =
            (f64::from(max_history) / f64::from(min_history)).powf(1.0 / (num_tables as f64 - 1.0));
        let mut tables = Vec::with_capacity(num_tables);
        let mut index_folds = Vec::with_capacity(num_tables);
        let mut tag_folds = Vec::with_capacity(num_tables);
        for i in 0..num_tables {
            let history_length = (f64::from(min_history) * ratio.powi(i as i32)).round() as u32;
            let index_bits = table_entries.trailing_zeros();
            tables.push(TaggedTable {
                entries: vec![TaggedEntry::default(); table_entries as usize],
                history_length,
                tag_bits,
                index_mask: table_entries - 1,
            });
            index_folds.push(FoldedHistory::new(history_length, index_bits));
            tag_folds.push(FoldedHistory::new(history_length, tag_bits));
        }

        Tage {
            base: vec![1; base_entries as usize],
            base_mask: base_entries - 1,
            tables,
            index_folds,
            tag_folds,
            history: vec![false; (max_history as usize + 1).next_power_of_two()].into_boxed_slice(),
            history_head: 0,
            history_mask: (max_history as usize + 1).next_power_of_two() - 1,
            max_history,
            use_alt_on_na: 0,
            lfsr: 0x1234_5678_9abc_def0,
        }
    }

    /// Number of tagged component tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    fn base_index(&self, pc: Addr) -> usize {
        ((pc.raw() >> 2) & self.base_mask) as usize
    }

    fn base_predict(&self, pc: Addr) -> bool {
        self.base[self.base_index(pc)] >= 2
    }

    /// The `(index, tag)` coordinates of `pc` in one tagged table under its
    /// current folded histories: `index = (pc' ^ pc'>>5 ^ fold) & mask` and
    /// `tag = (pc'>>3 ^ pc' ^ fold<<1 ^ fold) & tag_mask` with
    /// `pc' = pc >> 2`. The single definition both the eager and the lazy
    /// coordinate paths share.
    #[inline]
    fn table_coords(
        pc_bits: u64,
        table: &TaggedTable,
        index_fold: &FoldedHistory,
        tag_fold: &FoldedHistory,
    ) -> (u32, u16) {
        let idx = ((pc_bits ^ (pc_bits >> 5) ^ index_fold.value()) & table.index_mask) as u32;
        let tag_mask = (1u64 << table.tag_bits) - 1;
        let fold = tag_fold.value();
        let tag = (((pc_bits >> 3) ^ pc_bits ^ (fold << 1) ^ fold) & tag_mask) as u16;
        (idx, tag)
    }

    /// Computes every table's `(index, tag)` for `pc` in one pass over the
    /// precomputed folded histories. Batching the pass keeps the per-table
    /// loads independent and lets the update and allocation paths reuse the
    /// coordinates instead of re-deriving them.
    fn table_paths(&self, pc: Addr) -> TablePaths {
        let pc_bits = pc.raw() >> 2;
        let mut paths = TablePaths {
            idx: [0; MAX_TAGGED_TABLES],
            tag: [0; MAX_TAGGED_TABLES],
        };
        for (t, ((table, fi), ft)) in self
            .tables
            .iter()
            .zip(&self.index_folds)
            .zip(&self.tag_folds)
            .enumerate()
        {
            (paths.idx[t], paths.tag[t]) = Self::table_coords(pc_bits, table, fi, ft);
        }
        paths
    }

    /// Finds the longest-history table with a tag match, returning
    /// `(table, index)`, computing each table's coordinates lazily from the
    /// longest history down (the prediction path usually exits early).
    fn find_provider(&self, pc: Addr) -> Option<(usize, usize)> {
        let pc_bits = pc.raw() >> 2;
        for (t, ((table, fi), ft)) in self
            .tables
            .iter()
            .zip(&self.index_folds)
            .zip(&self.tag_folds)
            .enumerate()
            .rev()
        {
            let (idx, tag) = Self::table_coords(pc_bits, table, fi, ft);
            if table.entries[idx as usize].tag == tag {
                return Some((t, idx as usize));
            }
        }
        None
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.lfsr;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.lfsr = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn push_history(&mut self, taken: bool) {
        // The ring keeps at least max_history + 1 bits so that folded
        // histories can observe the bit each table's window evicts.
        let head = self.history_head;
        let mask = self.history_mask;
        for ((table, fi), ft) in self
            .tables
            .iter()
            .zip(&mut self.index_folds)
            .zip(&mut self.tag_folds)
        {
            let hl = table.history_length as usize;
            let evicted = self.history[(head + hl - 1) & mask];
            fi.update(taken, evicted);
            ft.update(taken, evicted);
        }
        self.history_head = (head + mask) & mask;
        self.history[self.history_head] = taken;
    }
}

impl DirectionPredictor for Tage {
    fn predict(&mut self, pc: Addr) -> bool {
        match self.find_provider(pc) {
            Some((t, idx)) => {
                let entry = &self.tables[t].entries[idx];
                let weak = entry.ctr == 3 || entry.ctr == 4;
                if weak && entry.useful == 0 && self.use_alt_on_na >= 0 {
                    // Newly allocated, weak entry: fall back to the alternate
                    // (base) prediction, per the TAGE update policy.
                    self.base_predict(pc)
                } else {
                    entry.ctr >= 4
                }
            }
            None => self.base_predict(pc),
        }
    }

    fn update(&mut self, pc: Addr, taken: bool) {
        // The provider search exits early from the longest history down; the
        // full (index, tag) pass is deferred to `allocate`, the only path
        // that touches more than the provider's table — so the common
        // correct-prediction update derives no coordinates it does not use.
        let provider = self.find_provider(pc);
        let provider_pred = match provider {
            Some((t, idx)) => self.tables[t].entries[idx].ctr >= 4,
            None => self.base_predict(pc),
        };
        let base_pred = self.base_predict(pc);

        match provider {
            Some((t, idx)) => {
                let weak = {
                    let e = &self.tables[t].entries[idx];
                    (e.ctr == 3 || e.ctr == 4) && e.useful == 0
                };
                // Track whether using the alternate prediction would have been
                // better for newly allocated entries.
                if weak && provider_pred != base_pred {
                    if base_pred == taken {
                        self.use_alt_on_na = (self.use_alt_on_na + 1).min(7);
                    } else {
                        self.use_alt_on_na = (self.use_alt_on_na - 1).max(-8);
                    }
                }
                {
                    let e = &mut self.tables[t].entries[idx];
                    if taken {
                        e.ctr = (e.ctr + 1).min(7);
                    } else {
                        e.ctr = e.ctr.saturating_sub(1);
                    }
                    if provider_pred != base_pred {
                        if provider_pred == taken {
                            e.useful = (e.useful + 1).min(3);
                        } else {
                            e.useful = e.useful.saturating_sub(1);
                        }
                    }
                }
                // On a misprediction, allocate in a longer-history table.
                if provider_pred != taken && t + 1 < self.tables.len() {
                    let paths = self.table_paths(pc);
                    self.allocate(&paths, taken, t + 1);
                }
            }
            None => {
                // Base predictor provided the prediction.
                let idx = self.base_index(pc);
                let c = &mut self.base[idx];
                if taken {
                    *c = (*c + 1).min(3);
                } else {
                    *c = c.saturating_sub(1);
                }
                if base_pred != taken {
                    let paths = self.table_paths(pc);
                    self.allocate(&paths, taken, 0);
                }
            }
        }

        // The base predictor is always updated (it is the fallback).
        if provider.is_some() {
            let idx = self.base_index(pc);
            let c = &mut self.base[idx];
            if taken {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
        }

        self.push_history(taken);
    }

    fn storage_bits(&self) -> u64 {
        let base_bits = self.base.len() as u64 * 2;
        let table_bits: u64 = self
            .tables
            .iter()
            .map(|t| t.entries.len() as u64 * (u64::from(t.tag_bits) + 3 + 2))
            .sum();
        base_bits + table_bits + u64::from(self.max_history)
    }

    fn name(&self) -> &'static str {
        "tage"
    }
}

impl Tage {
    /// Allocates an entry at the precomputed `paths` in a table with history
    /// at least as long as table `from`, preferring tables whose victim entry
    /// is not useful.
    fn allocate(&mut self, paths: &TablePaths, taken: bool, from: usize) {
        let rand = self.next_random();
        // Try up to two candidate tables, randomised per the TAGE paper to
        // avoid ping-ponging.
        let start = from + (rand as usize & 1) % (self.tables.len() - from).max(1);
        let mut allocated = false;
        for t in start..self.tables.len() {
            let entry = &mut self.tables[t].entries[paths.idx[t] as usize];
            if entry.useful == 0 {
                entry.tag = paths.tag[t];
                entry.ctr = if taken { 4 } else { 3 };
                entry.useful = 0;
                allocated = true;
                break;
            }
        }
        if !allocated {
            // Decay usefulness so future allocations can succeed.
            for t in from..self.tables.len() {
                let e = &mut self.tables[t].entries[paths.idx[t] as usize];
                e.useful = e.useful.saturating_sub(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(p: &mut Tage, pc: Addr, pattern: &[bool], reps: usize) -> usize {
        let mut mispredicts = 0;
        for _ in 0..reps {
            for &taken in pattern {
                if p.predict(pc) != taken {
                    mispredicts += 1;
                }
                p.update(pc, taken);
            }
        }
        mispredicts
    }

    #[test]
    fn learns_strongly_biased_branches() {
        let mut p = Tage::with_budget(8 * 1024);
        let pc = Addr::new(0x40_1000);
        let miss = train(&mut p, pc, &[true], 200);
        assert!(
            miss < 10,
            "too many mispredicts on an always-taken branch: {miss}"
        );
    }

    #[test]
    fn learns_loop_exits_better_than_bimodal() {
        // An 8-iteration loop: TAGE should learn the exit from history.
        let pattern: Vec<bool> = (0..8).map(|i| i != 7).collect();
        let pc = Addr::new(0x40_2000);

        let mut tage = Tage::with_budget(8 * 1024);
        let tage_miss = train(&mut tage, pc, &pattern, 100);

        let mut bimodal = crate::Bimodal::new(4096);
        let mut bimodal_miss = 0;
        for _ in 0..100 {
            for &taken in &pattern {
                if bimodal.predict(pc) != taken {
                    bimodal_miss += 1;
                }
                bimodal.update(pc, taken);
            }
        }
        assert!(
            tage_miss < bimodal_miss,
            "TAGE ({tage_miss}) should beat bimodal ({bimodal_miss}) on loop exits"
        );
        // And it should be close to perfect once warmed up.
        let warmed = train(&mut tage, pc, &pattern, 50);
        assert!(
            warmed <= 40,
            "warmed TAGE mispredicts {warmed} of 400 loop branches"
        );
    }

    #[test]
    fn learns_short_repeating_patterns() {
        let pattern = [true, true, false, true, false, false];
        let pc = Addr::new(0x40_3000);
        let mut p = Tage::with_budget(8 * 1024);
        train(&mut p, pc, &pattern, 150);
        let warmed = train(&mut p, pc, &pattern, 50);
        assert!(
            warmed < 75,
            "warmed TAGE should track a period-6 pattern, mispredicted {warmed}/300"
        );
    }

    #[test]
    fn distinguishes_many_branches() {
        let mut p = Tage::with_budget(8 * 1024);
        // Interleave two branches with opposite biases.
        let a = Addr::new(0x40_4000);
        let b = Addr::new(0x40_5004);
        for _ in 0..200 {
            p.predict(a);
            p.update(a, true);
            p.predict(b);
            p.update(b, false);
        }
        assert!(p.predict(a));
        assert!(!p.predict(b));
    }

    #[test]
    fn history_lengths_are_geometric() {
        let p = Tage::with_budget(8 * 1024);
        let lengths: Vec<u32> = p.tables.iter().map(|t| t.history_length).collect();
        for pair in lengths.windows(2) {
            assert!(
                pair[1] > pair[0],
                "history lengths must increase: {lengths:?}"
            );
        }
        assert_eq!(*lengths.first().unwrap(), 4);
        assert_eq!(*lengths.last().unwrap(), 128);
        assert_eq!(p.num_tables(), 6);
    }

    #[test]
    fn storage_scales_with_budget() {
        let small = Tage::with_budget(2 * 1024);
        let big = Tage::with_budget(32 * 1024);
        assert!(big.storage_bits() > small.storage_bits());
        assert_eq!(small.name(), "tage");
    }
}
