//! Return address stack (RAS).
//!
//! Part of the branch prediction unit of Figure 6: calls push their return
//! address, returns pop it. The stack has a bounded depth and wraps
//! (overwriting the oldest entry) the way hardware return address stacks do,
//! so deep call chains and mis-speculation cause recoverable inaccuracy
//! rather than unbounded growth.

use sim_core::Addr;

/// A fixed-capacity circular return address stack.
///
/// # Example
///
/// ```
/// use branch_pred::ReturnAddressStack;
/// use sim_core::Addr;
///
/// let mut ras = ReturnAddressStack::new(16);
/// ras.push(Addr::new(0x400104));
/// assert_eq!(ras.pop(), Some(Addr::new(0x400104)));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Clone, Debug)]
pub struct ReturnAddressStack {
    entries: Vec<Addr>,
    top: usize,
    len: usize,
}

impl ReturnAddressStack {
    /// Creates a stack with room for `capacity` return addresses.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity > 0,
            "the return address stack needs at least one entry"
        );
        ReturnAddressStack {
            entries: vec![Addr::new(0); capacity],
            top: 0,
            len: 0,
        }
    }

    /// Number of valid entries currently on the stack.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the stack holds no valid entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity of the stack.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Pushes a return address (the fall-through of a call).
    ///
    /// When the stack is full the oldest entry is silently overwritten, as in
    /// a hardware circular RAS.
    pub fn push(&mut self, return_address: Addr) {
        self.top = (self.top + 1) % self.entries.len();
        self.entries[self.top] = return_address;
        self.len = (self.len + 1).min(self.entries.len());
    }

    /// Pops the most recent return address, or `None` if the stack is empty.
    pub fn pop(&mut self) -> Option<Addr> {
        if self.len == 0 {
            return None;
        }
        let value = self.entries[self.top];
        self.top = (self.top + self.entries.len() - 1) % self.entries.len();
        self.len -= 1;
        Some(value)
    }

    /// Peeks at the most recent return address without popping it.
    pub fn peek(&self) -> Option<Addr> {
        (self.len > 0).then(|| self.entries[self.top])
    }

    /// Discards all entries (used on deep pipeline squashes when the
    /// speculative stack state cannot be trusted).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Storage in bits (46-bit return addresses, as in §VI-D).
    pub fn storage_bits(&self) -> u64 {
        self.entries.len() as u64 * 46
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_lifo_order() {
        let mut ras = ReturnAddressStack::new(8);
        for i in 1..=5u64 {
            ras.push(Addr::new(i * 4));
        }
        assert_eq!(ras.len(), 5);
        for i in (1..=5u64).rev() {
            assert_eq!(ras.pop(), Some(Addr::new(i * 4)));
        }
        assert!(ras.is_empty());
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_drops_the_oldest_entries() {
        let mut ras = ReturnAddressStack::new(4);
        for i in 1..=6u64 {
            ras.push(Addr::new(i * 0x10));
        }
        assert_eq!(ras.len(), 4);
        // The most recent four survive: 6, 5, 4, 3.
        assert_eq!(ras.pop(), Some(Addr::new(0x60)));
        assert_eq!(ras.pop(), Some(Addr::new(0x50)));
        assert_eq!(ras.pop(), Some(Addr::new(0x40)));
        assert_eq!(ras.pop(), Some(Addr::new(0x30)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn peek_and_clear() {
        let mut ras = ReturnAddressStack::new(4);
        assert_eq!(ras.peek(), None);
        ras.push(Addr::new(0x100));
        assert_eq!(ras.peek(), Some(Addr::new(0x100)));
        assert_eq!(ras.len(), 1);
        ras.clear();
        assert!(ras.is_empty());
        assert_eq!(ras.peek(), None);
        assert_eq!(ras.capacity(), 4);
    }

    #[test]
    fn storage_model() {
        let ras = ReturnAddressStack::new(32);
        assert_eq!(ras.storage_bits(), 32 * 46);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = ReturnAddressStack::new(0);
    }
}
