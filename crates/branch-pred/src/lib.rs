//! Branch direction predictors and the return address stack.
//!
//! The paper drives its branch-predictor-directed prefetcher (FDIP) with a
//! state-of-the-art TAGE predictor with an 8 KB storage budget, and compares
//! against simpler predictors (a 2-bit bimodal predictor and a naive
//! "never-taken" predictor) in the Figure 2 study to show that L1-I prefetch
//! coverage barely depends on predictor quality.
//!
//! This crate provides:
//!
//! * [`DirectionPredictor`] — the common interface (predict + update),
//! * [`NeverTaken`], [`Bimodal`], [`Gshare`], [`Tage`] — the predictors,
//! * [`ReturnAddressStack`] — return target prediction,
//! * [`PredictorKind`] — a small factory enum used by the experiment harness.
//!
//! # Example
//!
//! ```
//! use branch_pred::{DirectionPredictor, PredictorKind};
//! use sim_core::Addr;
//!
//! let mut tage = PredictorKind::Tage.build(8 * 1024);
//! let pc = Addr::new(0x400100);
//! // Train the predictor on an always-taken branch.
//! for _ in 0..64 {
//!     let p = tage.predict(pc);
//!     tage.update(pc, true);
//!     let _ = p;
//! }
//! assert!(tage.predict(pc));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bimodal;
pub mod gshare;
pub mod never_taken;
pub mod ras;
pub mod tage;

pub use bimodal::Bimodal;
pub use gshare::Gshare;
pub use never_taken::NeverTaken;
pub use ras::ReturnAddressStack;
pub use tage::Tage;

use sim_core::Addr;

/// A conditional-branch direction predictor.
///
/// Implementations are updated with the resolved outcome of every conditional
/// branch on the correct path (the paper trains predictors at retire time).
pub trait DirectionPredictor {
    /// Predicts whether the conditional branch at `pc` will be taken.
    fn predict(&mut self, pc: Addr) -> bool;

    /// Updates the predictor with the resolved outcome of the branch at `pc`.
    fn update(&mut self, pc: Addr, taken: bool);

    /// Storage the predictor occupies, in bits (for the §VI-D cost analysis).
    fn storage_bits(&self) -> u64;

    /// Short name used in reports.
    fn name(&self) -> &'static str;
}

/// Selects one of the direction predictors evaluated in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PredictorKind {
    /// State-of-the-art TAGE predictor (the default, Table I).
    Tage,
    /// Global-history XOR-indexed two-bit counters.
    Gshare,
    /// Per-PC two-bit saturating counters ("FDIP 2-bit" in Figure 2).
    Bimodal,
    /// Always predicts not-taken ("FDIP Never-Taken" in Figure 2).
    NeverTaken,
}

impl PredictorKind {
    /// All predictor kinds, in the order Figure 2 presents them.
    pub const ALL: [PredictorKind; 4] = [
        PredictorKind::Tage,
        PredictorKind::Gshare,
        PredictorKind::Bimodal,
        PredictorKind::NeverTaken,
    ];

    /// Builds the predictor with roughly the given storage budget in bytes.
    pub fn build(self, budget_bytes: u64) -> Box<dyn DirectionPredictor> {
        match self {
            PredictorKind::Tage => Box::new(Tage::with_budget(budget_bytes)),
            PredictorKind::Gshare => Box::new(Gshare::with_budget(budget_bytes)),
            PredictorKind::Bimodal => Box::new(Bimodal::with_budget(budget_bytes)),
            PredictorKind::NeverTaken => Box::new(NeverTaken::new()),
        }
    }

    /// Label used in the figures.
    pub const fn label(self) -> &'static str {
        match self {
            PredictorKind::Tage => "TAGE",
            PredictorKind::Gshare => "gshare",
            PredictorKind::Bimodal => "2-bit",
            PredictorKind::NeverTaken => "Never-Taken",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_kind() {
        for kind in PredictorKind::ALL {
            let p = kind.build(8 * 1024);
            assert!(!p.name().is_empty());
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn predictors_learn_a_strongly_biased_branch() {
        for kind in [
            PredictorKind::Tage,
            PredictorKind::Gshare,
            PredictorKind::Bimodal,
        ] {
            let mut p = kind.build(8 * 1024);
            let pc = Addr::new(0x40_0044);
            for _ in 0..100 {
                p.predict(pc);
                p.update(pc, true);
            }
            assert!(
                p.predict(pc),
                "{} failed to learn an always-taken branch",
                p.name()
            );
        }
    }

    #[test]
    fn never_taken_never_predicts_taken() {
        let mut p = PredictorKind::NeverTaken.build(0);
        let pc = Addr::new(0x40_0044);
        for _ in 0..10 {
            assert!(!p.predict(pc));
            p.update(pc, true);
        }
        assert_eq!(p.storage_bits(), 0);
    }

    #[test]
    fn storage_respects_budget_ordering() {
        let small = PredictorKind::Tage.build(2 * 1024);
        let large = PredictorKind::Tage.build(32 * 1024);
        assert!(large.storage_bits() > small.storage_bits());
        // The default budget of Table I is roughly 8 KB.
        let table1 = PredictorKind::Tage.build(8 * 1024);
        let bits = table1.storage_bits();
        assert!(
            bits <= 10 * 1024 * 8,
            "TAGE exceeds its budget: {bits} bits"
        );
        assert!(bits >= 4 * 1024 * 8, "TAGE wastes its budget: {bits} bits");
    }
}
