//! Per-PC two-bit saturating counter predictor ("FDIP 2-bit" in Figure 2).

use crate::DirectionPredictor;
use sim_core::Addr;

/// A classic bimodal predictor: a table of 2-bit saturating counters indexed
/// by the low bits of the branch PC.
#[derive(Clone, Debug)]
pub struct Bimodal {
    counters: Vec<u8>,
    index_mask: u64,
}

impl Bimodal {
    /// Creates a predictor with `entries` two-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "bimodal table size must be a power of two"
        );
        Bimodal {
            // Initialise to weakly not-taken.
            counters: vec![1; entries],
            index_mask: entries as u64 - 1,
        }
    }

    /// Creates a predictor using roughly `budget_bytes` of storage
    /// (4 counters per byte).
    pub fn with_budget(budget_bytes: u64) -> Self {
        let entries = (budget_bytes * 4).next_power_of_two().max(1024) as usize;
        Bimodal::new(entries)
    }

    /// Number of counters in the table.
    pub fn entries(&self) -> usize {
        self.counters.len()
    }

    fn index(&self, pc: Addr) -> usize {
        ((pc.raw() >> 2) & self.index_mask) as usize
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&mut self, pc: Addr) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    fn update(&mut self, pc: Addr, taken: bool) {
        let idx = self.index(pc);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    fn storage_bits(&self) -> u64 {
        self.counters.len() as u64 * 2
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branches_quickly() {
        let mut p = Bimodal::new(1024);
        let pc = Addr::new(0x4000);
        p.update(pc, true);
        p.update(pc, true);
        assert!(p.predict(pc));
        p.update(pc, false);
        assert!(
            p.predict(pc),
            "one not-taken must not flip a strongly-taken counter"
        );
        p.update(pc, false);
        p.update(pc, false);
        assert!(!p.predict(pc));
    }

    #[test]
    fn mispredicts_once_per_loop_exit() {
        let mut p = Bimodal::new(1024);
        let pc = Addr::new(0x4000);
        let mut mispredicts = 0;
        for _ in 0..10 {
            for i in 0..8 {
                let taken = i != 7; // loop: 7 taken, 1 not-taken
                if p.predict(pc) != taken {
                    mispredicts += 1;
                }
                p.update(pc, taken);
            }
        }
        // A bimodal predictor mispredicts roughly once per loop exit.
        assert!((9..=25).contains(&mispredicts), "mispredicts {mispredicts}");
    }

    #[test]
    fn different_pcs_use_different_counters() {
        let mut p = Bimodal::new(1024);
        let a = Addr::new(0x4000);
        let b = Addr::new(0x4004);
        for _ in 0..4 {
            p.update(a, true);
            p.update(b, false);
        }
        assert!(p.predict(a));
        assert!(!p.predict(b));
    }

    #[test]
    fn budget_sizing_and_storage() {
        let p = Bimodal::with_budget(2048);
        assert_eq!(p.entries(), 8192);
        assert_eq!(p.storage_bits(), 8192 * 2);
        assert_eq!(p.name(), "bimodal");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Bimodal::new(1000);
    }
}
