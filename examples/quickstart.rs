//! Quick start: run the no-prefetch baseline, FDIP and Boomerang on one
//! synthetic server workload and print the headline metrics of the paper
//! (front-end stall-cycle coverage, BTB-miss squashes, speedup, metadata cost).
//!
//! Run with: `cargo run --release --example quickstart`

use boomerang::{Mechanism, RunLength, WorkloadData};
use sim_core::MicroarchConfig;
use workloads::WorkloadKind;

fn main() {
    let config = MicroarchConfig::hpca17();
    let length = RunLength {
        trace_blocks: 60_000,
        warmup_blocks: 10_000,
    };
    println!("generating the Nutch-like workload ...");
    let data = WorkloadData::generate(WorkloadKind::Nutch, length);

    let baseline = data.run(Mechanism::Baseline, &config);
    println!(
        "baseline    : IPC {:.3}, {} fetch-stall cycles, {:.2} squashes/k-instr",
        baseline.ipc(),
        baseline.fetch_stall_cycles,
        baseline.squashes_per_kilo().total()
    );

    for mechanism in [
        Mechanism::Fdip,
        Mechanism::Confluence,
        Mechanism::Boomerang(Default::default()),
    ] {
        let stats = data.run(mechanism, &config);
        println!(
            "{:<12}: IPC {:.3}, coverage {:>5.1}%, BTB-miss squashes/k-instr {:.2}, speedup {:.3}x, metadata {} bytes",
            mechanism.label(),
            stats.ipc(),
            stats.stall_coverage_vs(&baseline) * 100.0,
            stats.squashes_per_kilo().btb_miss,
            stats.speedup_vs(&baseline),
            mechanism.metadata_bytes(),
        );
    }
}
