//! LLC-latency sensitivity (the Figure 2/5/11 axis): sweeps the average LLC
//! round-trip latency and reports FDIP's and Boomerang's stall-cycle coverage
//! over the no-prefetch baseline on one workload.
//!
//! Run with: `cargo run --release --example llc_sweep`

use boomerang::{Mechanism, RunLength, WorkloadData};
use sim_core::{MicroarchConfig, NocModel};
use workloads::WorkloadKind;

fn main() {
    let length = RunLength {
        trace_blocks: 50_000,
        warmup_blocks: 10_000,
    };
    let data = WorkloadData::generate(WorkloadKind::Apache, length);
    println!("{:>11} {:>14} {:>17}", "LLC latency", "FDIP coverage", "Boomerang coverage");
    for latency in [1u64, 10, 20, 30, 40, 50, 60, 70] {
        let cfg = MicroarchConfig::hpca17().with_noc(NocModel::Fixed(latency));
        let baseline = data.run(Mechanism::Baseline, &cfg);
        let fdip = data.run(Mechanism::Fdip, &cfg);
        let boom = data.run(Mechanism::Boomerang(Default::default()), &cfg);
        println!(
            "{:>11} {:>13.1}% {:>16.1}%",
            latency,
            fdip.stall_coverage_vs(&baseline) * 100.0,
            boom.stall_coverage_vs(&baseline) * 100.0
        );
    }
}
