//! LLC-latency sensitivity (the Figure 2/5/11 axis) through the campaign
//! API: loads `specs/llc_sweep.toml`, runs the declarative sweep sharded
//! across the work-stealing pool, and prints FDIP's and Boomerang's
//! stall-cycle coverage over the no-prefetch baseline at each LLC round-trip
//! latency.
//!
//! Run with: `cargo run --release --example llc_sweep`

use boomerang::Mechanism;
use campaign::{run_campaign, CampaignSpec, EngineOptions};

fn main() {
    let spec_path = concat!(env!("CARGO_MANIFEST_DIR"), "/specs/llc_sweep.toml");
    let text = std::fs::read_to_string(spec_path)
        .unwrap_or_else(|e| panic!("cannot read {spec_path}: {e}"));
    let spec = CampaignSpec::from_toml_str(&text).unwrap_or_else(|e| panic!("{spec_path}: {e}"));

    let report = run_campaign(&spec, &EngineOptions::default()).expect("campaign run");

    println!(
        "{:>11} {:>14} {:>17}",
        "LLC latency", "FDIP coverage", "Boomerang coverage"
    );
    for (config_idx, point) in spec.configs.iter().enumerate() {
        let coverage = |mechanism: Mechanism| {
            report
                .rows
                .iter()
                .find(|r| r.job.config == config_idx && r.job.mechanism == mechanism)
                .map(|r| r.coverage() * 100.0)
                .expect("spec sweeps this mechanism")
        };
        println!(
            "{:>11} {:>13.1}% {:>16.1}%",
            point.build().llc_round_trip(),
            coverage(Mechanism::Fdip),
            coverage(Mechanism::Boomerang(Default::default())),
        );
    }
}
