//! Web-server front-end study: the scenario the paper's introduction
//! motivates. Runs the two SPECweb99 web-server workloads (Apache, Zeus)
//! through every control-flow-delivery mechanism of Figure 9 and prints the
//! speedup table.
//!
//! The study is an ordinary campaign spec rendered through the same
//! `campaign::sink` table CI gates, so this output stays consistent with
//! `boomerang-sim run`.
//!
//! Run with: `cargo run --release --example webserver_frontend`

use campaign::{run_campaign, to_table, CampaignSpec, EngineOptions};

fn main() {
    let spec = CampaignSpec::from_toml_str(
        r#"
name = "webserver-frontend"
description = "Figure 9 mechanisms on the SPECweb99 web-server workloads"
workloads = ["apache", "zeus"]
mechanisms = ["next-line", "dip", "fdip", "shift", "confluence", "boomerang"]
predictor = "tage"
seeds = [0]

[run]
trace_blocks = 60000
warmup_blocks = 10000

[[config]]
label = "table1"
"#,
    )
    .expect("embedded spec is valid");

    let report = run_campaign(&spec, &EngineOptions::default()).expect("campaign runs");
    print!("{}", to_table(&report));
}
