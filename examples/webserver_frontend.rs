//! Web-server front-end study: the scenario the paper's introduction
//! motivates. Runs the two SPECweb99 web-server workloads (Apache, Zeus)
//! through every control-flow-delivery mechanism of Figure 9 and reports
//! speedup and squash rates per workload.
//!
//! Run with: `cargo run --release --example webserver_frontend`

use boomerang::{Mechanism, RunLength, WorkloadData};
use sim_core::MicroarchConfig;
use workloads::WorkloadKind;

fn main() {
    let config = MicroarchConfig::hpca17();
    let length = RunLength {
        trace_blocks: 60_000,
        warmup_blocks: 10_000,
    };
    for kind in [WorkloadKind::Apache, WorkloadKind::Zeus] {
        println!("== {kind} ==");
        let data = WorkloadData::generate(kind, length);
        let baseline = data.run(Mechanism::Baseline, &config);
        println!(
            "{:<12} {:>9} {:>12} {:>12} {:>10}",
            "mechanism", "speedup", "coverage", "btb-sq/ki", "mpred/ki"
        );
        for mechanism in Mechanism::FIGURE7 {
            let stats = data.run(mechanism, &config);
            let rates = stats.squashes_per_kilo();
            println!(
                "{:<12} {:>8.3}x {:>11.1}% {:>12.2} {:>10.2}",
                mechanism.label(),
                stats.speedup_vs(&baseline),
                stats.stall_coverage_vs(&baseline) * 100.0,
                rates.btb_miss,
                rates.misprediction
            );
        }
        println!();
    }
}
