//! OLTP BTB-pressure study: Oracle- and DB2-like workloads have the largest
//! branch working sets in the paper (75% of DB2's squashes are BTB-miss
//! induced on the baseline). This example sweeps the BTB size for FDIP and
//! compares it against Boomerang at the practical 2K-entry size, showing that
//! prefilling the BTB recovers most of what a 16x larger BTB would buy.
//!
//! Run with: `cargo run --release --example oltp_btb_pressure`

use boomerang::{Mechanism, RunLength, WorkloadData};
use sim_core::MicroarchConfig;
use workloads::WorkloadKind;

fn main() {
    let length = RunLength {
        trace_blocks: 60_000,
        warmup_blocks: 10_000,
    };
    for kind in [WorkloadKind::Oracle, WorkloadKind::Db2] {
        println!("== {kind} ==");
        let data = WorkloadData::generate(kind, length);
        let base_cfg = MicroarchConfig::hpca17();
        let baseline = data.run(Mechanism::Baseline, &base_cfg);

        for btb_entries in [2048u64, 8192, 32 * 1024] {
            let cfg = MicroarchConfig::hpca17().with_btb_entries(btb_entries);
            let stats = data.run(Mechanism::Fdip, &cfg);
            println!(
                "FDIP, {:>5}-entry BTB : speedup {:.3}x, BTB-miss squashes/ki {:.2}",
                btb_entries,
                stats.speedup_vs(&baseline),
                stats.squashes_per_kilo().btb_miss
            );
        }
        let boom = data.run(Mechanism::Boomerang(Default::default()), &base_cfg);
        println!(
            "Boomerang, 2048-entry : speedup {:.3}x, BTB-miss squashes/ki {:.2}  (metadata: 540 bytes)",
            boom.speedup_vs(&baseline),
            boom.squashes_per_kilo().btb_miss
        );
        println!();
    }
}
