//! OLTP BTB-pressure study: Oracle- and DB2-like workloads have the largest
//! branch working sets in the paper (75% of DB2's squashes are BTB-miss
//! induced on the baseline). This example sweeps the BTB size for FDIP and
//! Boomerang, showing that prefilling the practical 2K-entry BTB recovers
//! most of what a 16x larger BTB would buy.
//!
//! The sweep is an ordinary campaign spec rendered through the same
//! `campaign::sink` table CI gates, so this output stays consistent with
//! `boomerang-sim run`.
//!
//! Run with: `cargo run --release --example oltp_btb_pressure`

use campaign::{run_campaign, to_table, CampaignSpec, EngineOptions};

fn main() {
    let spec = CampaignSpec::from_toml_str(
        r#"
name = "oltp-btb-pressure"
description = "BTB-size sweep on the OLTP workloads, FDIP vs Boomerang"
workloads = ["oracle", "db2"]
mechanisms = ["fdip", "boomerang"]
predictor = "tage"
seeds = [0]

[run]
trace_blocks = 60000
warmup_blocks = 10000

[[config]]
label = "btb-2048"

[[config]]
label = "btb-8192"
btb_entries = 8192

[[config]]
label = "btb-32768"
btb_entries = 32768
"#,
    )
    .expect("embedded spec is valid");

    let report = run_campaign(&spec, &EngineOptions::default()).expect("campaign runs");
    print!("{}", to_table(&report));
    println!("\nBoomerang metadata: ~540 bytes; a 32K-entry BTB costs ~16x the 2K-entry one.");
}
