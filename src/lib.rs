//! Umbrella package for the Boomerang reproduction workspace.
//!
//! This crate exists so the runnable walkthroughs in `examples/` have a
//! package to live in; the actual functionality is in the workspace crates.
//! Start from [`boomerang`] for the experiment API or [`campaign`] for the
//! declarative campaign engine and the `boomerang-sim` CLI.

#![warn(missing_docs)]

pub use boomerang;
pub use campaign;
